//! The ten invariant passes and the scope tracker they share.
//!
//! Scope recognition is purely structural: when a `{` opens, the tokens
//! between it and the previous `{` / `}` / `;` form its "header". A header
//! containing `mod` under a `#[cfg(test)]` attribute (or named `tests`)
//! opens a test scope; a header of the form `impl .. Protocol for .. `
//! opens a protocol-impl scope. Everything else is a plain block. This is
//! exactly the granularity the passes need:
//!
//! * **determinism** — everywhere in the algorithm crates.
//! * **locality** — inside protocol-impl scopes only (the message
//!   handlers that the paper's 1-hop claim is about).
//! * **panic-safety** — inside protocol-impl scopes, test code exempt.
//! * **float-safety** — everywhere outside test code, with the robust
//!   predicates module exempt (its exact comparisons are the point).
//! * **fault-scope** — fault-injection machinery (`FaultPlan` and
//!   friends) stays in the harness: never inside a protocol-impl scope,
//!   and outside `crates/wsn/` only in the runner layer and test code.
//! * **churn-scope** — dynamic-network machinery (`ChurnPlan`,
//!   `DynamicTopology`, `IncrementalDetector` and friends) stays in the
//!   churn layer: never inside a protocol-impl scope (protocols see only
//!   their current neighbors, not topology-change events), and elsewhere
//!   only in `crates/wsn`, the incremental detector and the churn driver.
//! * **par-scope** — raw threading machinery (`std::thread`, atomics,
//!   locks, channels) lives only in `crates/par`; algorithm crates reach
//!   it through the deterministic `ballfit-par` API. Inside a
//!   protocol-impl scope even that API is banned: a simulated node is a
//!   single-threaded message handler, and the paper's locality argument
//!   says nothing about intra-node concurrency.
//! * **obs-scope** — the trace-emission API (`Trace`, `TraceEvent`, …)
//!   never inside a protocol-impl scope: only the simulator, the
//!   detectors and the runner layer emit observations. A protocol that
//!   writes its own trace records could skew the very accounting the
//!   observability layer exists to certify (and would run per-node,
//!   breaking the single-sink determinism argument).
//! * **recovery-scope** — the checkpoint/restore API
//!   (`TopologySnapshot`, `DetectorCheckpoint`, `checkpoint`,
//!   `restore`, `snapshot`) never inside a protocol-impl scope: recovery
//!   is an orchestration concern of the chaos/churn layer, and a
//!   protocol that snapshots or restores its own state would sidestep
//!   the replay-identity pins that make crash recovery auditable.
//! * **serve-scope** — the multi-tenant service API (`Service`,
//!   `ServeRequest`, `serve_log` and friends) never inside a
//!   protocol-impl scope, and outside `crates/serve/` only in test
//!   code: the daemon sits *above* the detectors, so algorithm crates
//!   must not grow a dependency on the wire layer — requests flow down,
//!   never up.
//!
//! On top of the ten token-level passes, four **interprocedural**
//! passes run over the whole workspace at once (via [`analyze_files`]),
//! using the [`crate::callgraph`] built from the [`crate::ast`] item
//! trees:
//!
//! * **determinism-taint** — a `Protocol` impl fn or detector entry
//!   point ([`LintConfig::taint_entry_points`]) that *transitively*
//!   reaches a nondeterminism source (`HashMap`, `thread_rng`,
//!   wall-clock `now()`, `RandomState`, `from_entropy`) through any
//!   chain of workspace helpers is tainted. A local
//!   `allow(determinism)` does **not** launder taint — only
//!   `allow(determinism-taint)` at the source site marks it as an
//!   audited invariant.
//! * **panic-reachability** — protocol handlers may not transitively
//!   reach `unwrap`/`expect`/`panic!`-family macros or direct indexing;
//!   `allow(panic-reachability)` at the panic site documents a checked
//!   invariant and exempts that source.
//! * **transitive-locality** — protocol handlers may not reach
//!   global-state accessors or whole-network types through helpers;
//!   the `Ctx` API boundary ([`LintConfig::trusted_owners`]) is
//!   terminal, since its internals belong to the simulator.
//! * **stale-allow** — every `// ballfit-lint: allow(pass)` directive
//!   must suppress at least one finding (or annotate a real transitive
//!   source); dead or misspelled directives are errors, so escape
//!   hatches cannot silently outlive the code they excused.

use crate::callgraph::{CallGraph, FileUnit, FnNode};
use crate::lexer::{is_float_literal, lex, Lexed, Tok, TokKind};

/// The fifteen passes (eleven token-level, four interprocedural).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// No `HashMap`/`HashSet`, `thread_rng`, `SystemTime::now`,
    /// `Instant::now` in algorithm crates.
    Determinism,
    /// No global-state accessors inside `Protocol` trait impls.
    Locality,
    /// No `unwrap`/`expect`/`panic!`/indexing in protocol round handlers.
    PanicSafety,
    /// No NaN-unsafe `partial_cmp().unwrap()` and no `==` on floats
    /// outside `geom::predicates`.
    FloatSafety,
    /// Fault-injection machinery (`FaultPlan`, `run_with_faults`, the
    /// fault PRNGs) never inside `Protocol` impls, and outside the
    /// simulator/runner layer only in test code.
    FaultScope,
    /// Churn machinery (`ChurnPlan`, `DynamicTopology`,
    /// `IncrementalDetector`, …) never inside `Protocol` impls, and
    /// outside the churn layer only in test code.
    ChurnScope,
    /// Raw threading machinery (`std::thread`, atomics, locks, channels)
    /// only in `crates/par` (plus test code); the deterministic
    /// `ballfit-par` API everywhere else, and neither inside `Protocol`
    /// impls.
    ParScope,
    /// Trace-emission machinery (`Trace`, `TraceEvent`, …) never inside
    /// `Protocol` impls: only the simulator, the detectors and the
    /// runner layer emit observations.
    ObsScope,
    /// Checkpoint/restore machinery (`TopologySnapshot`,
    /// `DetectorCheckpoint`, `checkpoint`, `restore`, `snapshot`) never
    /// inside `Protocol` impls: recovery belongs to the orchestration
    /// layer, not to message handlers.
    RecoveryScope,
    /// The multi-tenant service API (`Service`, `ServeRequest`,
    /// `serve_log`, …) never inside `Protocol` impls, and outside
    /// `crates/serve` only in test code: the daemon orchestrates the
    /// detectors from above, and algorithm crates must not reach back
    /// up into the wire layer.
    ServeScope,
    /// The pluggable-backend API (`BoundaryBackend`, `BackendDetection`,
    /// the rival detectors) never inside `Protocol` impls, and outside
    /// `crates/backends` / `crates/serve` / `crates/cli` only in test
    /// code: backends *wrap* the detection pipeline from above — a
    /// protocol handler or an algorithm crate reaching up into the
    /// backend registry would invert the layering.
    BackendScope,
    /// Interprocedural: protocol fns and detector entry points must not
    /// transitively reach nondeterminism sources.
    DeterminismTaint,
    /// Interprocedural: protocol fns must not transitively reach
    /// `unwrap`/`expect`/`panic!`/indexing outside annotated invariants.
    PanicReachability,
    /// Interprocedural: protocol fns must not reach global-state
    /// accessors through helpers.
    TransitiveLocality,
    /// Workspace audit: every `allow(...)` directive must suppress a
    /// finding or annotate a transitive source.
    StaleAllow,
}

impl Pass {
    /// The name used in diagnostics and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Determinism => "determinism",
            Pass::Locality => "locality",
            Pass::PanicSafety => "panic-safety",
            Pass::FloatSafety => "float-safety",
            Pass::FaultScope => "fault-scope",
            Pass::ChurnScope => "churn-scope",
            Pass::ParScope => "par-scope",
            Pass::ObsScope => "obs-scope",
            Pass::RecoveryScope => "recovery-scope",
            Pass::ServeScope => "serve-scope",
            Pass::BackendScope => "backend-scope",
            Pass::DeterminismTaint => "determinism-taint",
            Pass::PanicReachability => "panic-reachability",
            Pass::TransitiveLocality => "transitive-locality",
            Pass::StaleAllow => "stale-allow",
        }
    }

    /// All passes in report order.
    pub const ALL: [Pass; 15] = [
        Pass::Determinism,
        Pass::Locality,
        Pass::PanicSafety,
        Pass::FloatSafety,
        Pass::FaultScope,
        Pass::ChurnScope,
        Pass::ParScope,
        Pass::ObsScope,
        Pass::RecoveryScope,
        Pass::ServeScope,
        Pass::BackendScope,
        Pass::DeterminismTaint,
        Pass::PanicReachability,
        Pass::TransitiveLocality,
        Pass::StaleAllow,
    ];
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which pass fired.
    pub pass: Pass,
    /// File the finding is in (as given to [`analyze_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with a suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}:{}",
            self.pass.name(),
            self.message,
            self.file,
            self.line
        )
    }
}

/// Analyzer configuration. [`LintConfig::default`] encodes the ballfit
/// workspace policy; the deny lists are plain data so a future config file
/// can extend them without touching pass logic.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) the analyzer scans.
    pub crates: Vec<String>,
    /// Trait names whose impls form protocol scopes.
    pub protocol_traits: Vec<String>,
    /// Method names that read global state and are therefore denied
    /// inside protocol impls (anything beyond `neighbors(id)`-style
    /// 1-hop queries).
    pub locality_denied_methods: Vec<String>,
    /// Type names that *are* global state; naming them inside a protocol
    /// impl is a locality violation regardless of what is called on them.
    pub locality_denied_types: Vec<String>,
    /// Path suffixes exempt from the float-safety `==` check.
    pub float_exempt_files: Vec<String>,
    /// Identifiers that belong to the fault-injection layer; naming one
    /// inside a protocol impl (anywhere), or outside
    /// [`LintConfig::fault_allowed_paths`] in non-test code, is a
    /// fault-scope violation: faults are a property of the *radio*, so
    /// only the simulator and the runner layer may know about them.
    pub fault_idents: Vec<String>,
    /// Path fragments where fault-injection identifiers are at home (the
    /// simulator crate and the protocol-runner module).
    pub fault_allowed_paths: Vec<String>,
    /// Identifiers that belong to the dynamic-network (churn) layer;
    /// naming one inside a protocol impl (anywhere), or outside
    /// [`LintConfig::churn_allowed_paths`] in non-test code, is a
    /// churn-scope violation: a protocol only ever sees its current
    /// neighbors, and detection code must not fork on "am I being run
    /// incrementally?" — the incremental detector wraps the static
    /// pipeline, never the other way around.
    pub churn_idents: Vec<String>,
    /// Path fragments where churn identifiers are at home (the simulator
    /// crate, the incremental detector and the scenario churn driver).
    pub churn_allowed_paths: Vec<String>,
    /// Identifiers that belong to raw threading machinery (spawning,
    /// atomics, locks, channels); naming one inside a protocol impl
    /// (anywhere), or outside [`LintConfig::par_allowed_paths`] in
    /// non-test code, is a par-scope violation: algorithm crates must go
    /// through the deterministic `ballfit-par` API, whose index-ordered
    /// reassembly is what keeps parallel output byte-identical. (`thread`
    /// followed by `::` is checked structurally in addition to this
    /// list.)
    pub par_thread_idents: Vec<String>,
    /// The `ballfit-par` API surface; allowed in algorithm code but
    /// banned inside protocol impls — a simulated node is a
    /// single-threaded message handler.
    pub par_api_idents: Vec<String>,
    /// Path fragments where raw threading machinery is at home (the
    /// deterministic thread-pool crate itself).
    pub par_allowed_paths: Vec<String>,
    /// The trace-emission API surface; allowed in the simulator, the
    /// detectors and the runner layer, but banned inside protocol impls —
    /// a protocol must not write its own observation records. (`MsgBytes`
    /// is deliberately absent: the `Protocol::Msg` bound requires it.)
    pub obs_idents: Vec<String>,
    /// The checkpoint/restore API surface; allowed anywhere in the
    /// orchestration layers but banned inside protocol impls — crash
    /// recovery works by restoring the *simulation* from a snapshot and
    /// replaying, never by a handler snapshotting or restoring its own
    /// state mid-run (which would break replay byte-identity).
    pub recovery_idents: Vec<String>,
    /// The multi-tenant service API surface; naming one of these inside
    /// a protocol impl (anywhere), or outside
    /// [`LintConfig::serve_allowed_paths`] in non-test code, is a
    /// serve-scope violation: the daemon orchestrates the detectors from
    /// above, and algorithm crates must not grow a dependency on the
    /// wire layer.
    pub serve_idents: Vec<String>,
    /// Path fragments where the service API is at home (the serve crate
    /// itself; the CLI and benches are not scanned crates).
    pub serve_allowed_paths: Vec<String>,
    /// The pluggable-backend API surface; naming one of these inside a
    /// protocol impl (anywhere), or outside
    /// [`LintConfig::backend_allowed_paths`] in non-test code, is a
    /// backend-scope violation: backends adapt the detection pipeline
    /// from above, so the pipeline (and every algorithm crate below it)
    /// must compile without knowing the trait exists.
    pub backend_idents: Vec<String>,
    /// Path fragments where the backend API is at home (the backends
    /// crate itself plus its two consumers, the daemon and the CLI).
    pub backend_allowed_paths: Vec<String>,
    /// `(alias, crate-dir)` pairs mapping `use ballfit_wsn::..`-style
    /// crate names to the `crates/<dir>` layout, so cross-crate paths
    /// resolve in the call graph.
    pub crate_aliases: Vec<(String, String)>,
    /// Method names excluded from by-name fallback resolution in the
    /// call graph: they collide with std (`insert`, `len`, `iter`, ...)
    /// and an unknown receiver would otherwise connect every data
    /// structure user to every workspace type with that method.
    pub method_fallback_skip: Vec<String>,
    /// Owner types whose methods are a verified API boundary: the
    /// interprocedural passes stop traversal there (`Ctx` — its
    /// internals belong to the simulator, and its `send` assert *is*
    /// the locality guard).
    pub trusted_owners: Vec<String>,
    /// `Owner::name` labels of detector entry points that must be
    /// determinism-taint-free in addition to all protocol fns: these are
    /// the public seams the reproduction's same-seed ⇒ same-boundary
    /// claim is stated over.
    pub taint_entry_points: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |xs: &[&str]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        LintConfig {
            crates: s(&["core", "wsn", "geom", "mds", "netgen", "par", "obs", "serve", "backends"]),
            protocol_traits: s(&["Protocol"]),
            locality_denied_methods: s(&[
                // NetworkModel: ground truth a real node cannot observe.
                "positions",
                "true_distance",
                "oracle",
                "measure",
                "surface_indices",
                "is_surface",
                // Topology: whole-graph queries beyond the node's own
                // 1-hop view (`neighbors`, `degree`, `are_neighbors`,
                // `len` stay allowed).
                "edge_count",
                "closed_neighborhood",
                "closed_k_hop_neighborhood",
                "hop_distances",
                "is_connected",
                "isolated_nodes",
                "degree_stats",
            ]),
            locality_denied_types: s(&[
                "NetworkModel",
                "Topology",
                "Simulator",
                "BoundaryDetector",
            ]),
            float_exempt_files: s(&["geom/src/predicates.rs"]),
            fault_idents: s(&[
                "FaultPlan",
                "FaultCounts",
                "Crash",
                "run_with_faults",
                "SplitMix64",
                "Xoshiro256PlusPlus",
            ]),
            fault_allowed_paths: s(&[
                "crates/wsn/",
                "crates/core/src/protocols.rs",
                "crates/core/src/chaos.rs",
            ]),
            churn_idents: s(&[
                "ChurnPlan",
                "ChurnEvent",
                "ChurnAction",
                "TopologyEvent",
                "TopologyDelta",
                "DynamicTopology",
                "IncrementalDetector",
                "BoundaryDiff",
                "ChurnDriver",
            ]),
            churn_allowed_paths: s(&[
                "crates/wsn/",
                "crates/core/src/incremental.rs",
                "crates/core/src/chaos.rs",
                "crates/netgen/src/churn.rs",
                "crates/serve/",
            ]),
            par_thread_idents: s(&[
                "JoinHandle",
                "Mutex",
                "RwLock",
                "Condvar",
                "Barrier",
                "mpsc",
                "available_parallelism",
                "AtomicUsize",
                "AtomicIsize",
                "AtomicBool",
                "AtomicU32",
                "AtomicU64",
                "AtomicI32",
                "AtomicI64",
            ]),
            par_api_idents: s(&[
                "Parallelism",
                "par_map",
                "par_map_init",
                "par_map_owned",
                "par_for_each_init",
            ]),
            par_allowed_paths: s(&["crates/par/"]),
            obs_idents: s(&[
                "Trace",
                "TraceEvent",
                "TraceRecord",
                "TraceSummary",
                "summarize",
                "to_jsonl",
                "write_jsonl",
                "SpanId",
            ]),
            recovery_idents: s(&[
                "TopologySnapshot",
                "DetectorCheckpoint",
                "checkpoint",
                "restore",
                "snapshot",
            ]),
            serve_idents: s(&[
                "Service",
                "ServeRequest",
                "ServeResponse",
                "ServeError",
                "serve_log",
                "serve_jsonl",
                "serve_transcript",
                "run_stdio",
            ]),
            serve_allowed_paths: s(&["crates/serve/"]),
            backend_idents: s(&[
                "BoundaryBackend",
                "BackendDetection",
                "UbfBackend",
                "StatisticalBackend",
            ]),
            backend_allowed_paths: s(&["crates/backends/", "crates/serve/", "crates/cli/"]),
            crate_aliases: [
                ("ballfit", "core"),
                ("ballfit_wsn", "wsn"),
                ("ballfit_geom", "geom"),
                ("ballfit_mds", "mds"),
                ("ballfit_netgen", "netgen"),
                ("ballfit_par", "par"),
                ("ballfit_obs", "obs"),
                ("ballfit_serve", "serve"),
                ("ballfit_backends", "backends"),
            ]
            .iter()
            .map(|(a, k)| (a.to_string(), k.to_string()))
            .collect(),
            method_fallback_skip: s(&[
                // std collection / iterator / option / slice vocabulary:
                // by-name fallback on these would wire the graph into a
                // clique through BTreeMap and Vec call sites.
                "len",
                "is_empty",
                "get",
                "get_mut",
                "insert",
                "remove",
                "push",
                "pop",
                "clear",
                "contains",
                "contains_key",
                "iter",
                "iter_mut",
                "into_iter",
                "next",
                "clone",
                "cmp",
                "eq",
                "ne",
                "hash",
                "fmt",
                "map",
                "and_then",
                "or_else",
                "unwrap_or",
                "unwrap_or_else",
                "unwrap_or_default",
                "is_some",
                "is_none",
                "is_some_and",
                "is_none_or",
                "is_ok",
                "is_err",
                "ok",
                "err",
                "as_ref",
                "as_mut",
                "as_str",
                "as_slice",
                "as_bytes",
                "to_string",
                "to_vec",
                "to_owned",
                "into",
                "from",
                "extend",
                "entry",
                "or_default",
                "or_insert",
                "or_insert_with",
                "keys",
                "values",
                "sort",
                "sort_by",
                "sort_by_key",
                "sort_unstable",
                "sort_unstable_by",
                "dedup",
                "retain",
                "drain",
                "split_last",
                "split_first",
                "split_once",
                "binary_search",
                "binary_search_by",
                "windows",
                "chunks",
                "first",
                "last",
                "min",
                "max",
                "abs",
                "sqrt",
                "powi",
                "powf",
                "floor",
                "ceil",
                "round",
                "total_cmp",
                "partial_cmp",
                "max_by",
                "min_by",
                "max_by_key",
                "min_by_key",
                "count",
                "sum",
                "product",
                "fold",
                "filter",
                "filter_map",
                "flat_map",
                "flatten",
                "collect",
                "rev",
                "zip",
                "enumerate",
                "take",
                "skip",
                "chain",
                "any",
                "all",
                "find",
                "position",
                "copied",
                "cloned",
                "starts_with",
                "ends_with",
                "trim",
                "split",
                "join",
                "push_str",
                "saturating_sub",
                "saturating_add",
                "wrapping_sub",
                "wrapping_add",
                "checked_sub",
                "checked_add",
                "to_bits",
                "from_bits",
                "swap",
                "resize",
                "truncate",
                "reserve",
                "with_capacity",
                "new",
                "default",
                "range",
                "append",
                "peek",
                "min_element",
                "max_element",
                "mul_add",
                "hypot",
                "clamp",
                "rem_euclid",
                "div_euclid",
                "write",
                "read",
                "flush",
                "take_while",
                "skip_while",
                "step_by",
                "then",
                "then_some",
                "then_with",
                "replace",
                "take_mut",
                "get_or_insert_with",
                "expect",
                "unwrap",
            ]),
            trusted_owners: s(&["Ctx"]),
            taint_entry_points: s(&[
                "BoundaryDetector::detect",
                "BoundaryDetector::detect_view",
                "BoundaryDetector::detect_view_traced",
                "IncrementalDetector::apply",
                "IncrementalDetector::apply_traced",
                "UbfBackend::detect",
                "StatisticalBackend::detect",
            ]),
        }
    }
}

/// Per-token scope flags computed by one forward walk.
#[derive(Debug, Clone, Copy, Default)]
struct ScopeFlags {
    in_test: bool,
    in_protocol_impl: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    TestMod,
    ProtocolImpl,
}

/// Computes, for every token index, whether it sits inside a test module
/// and/or a `Protocol` trait impl.
fn scope_flags(toks: &[Tok], cfg: &LintConfig) -> Vec<ScopeFlags> {
    let mut flags = vec![ScopeFlags::default(); toks.len()];
    let mut stack: Vec<ScopeKind> = Vec::new();
    let mut current = ScopeFlags::default();
    for (i, t) in toks.iter().enumerate() {
        flags[i] = current;
        if t.is_punct("{") {
            let kind = classify_header(toks, i, cfg);
            stack.push(kind);
            match kind {
                ScopeKind::TestMod => current.in_test = true,
                ScopeKind::ProtocolImpl => current.in_protocol_impl = true,
                ScopeKind::Block => {}
            }
            flags[i] = current;
        } else if t.is_punct("}") {
            stack.pop();
            current = ScopeFlags {
                in_test: stack.contains(&ScopeKind::TestMod),
                in_protocol_impl: stack.contains(&ScopeKind::ProtocolImpl),
            };
            flags[i] = current;
        }
    }
    flags
}

/// Classifies the scope opened by the `{` at index `open`, by inspecting
/// the header tokens back to the previous `{`, `}`, or `;`.
fn classify_header(toks: &[Tok], open: usize, cfg: &LintConfig) -> ScopeKind {
    let mut start = open;
    while start > 0 {
        let p = &toks[start - 1];
        if p.is_punct("{") || p.is_punct("}") || p.is_punct(";") {
            break;
        }
        start -= 1;
    }
    let header = &toks[start..open];

    // `mod <name>` headers: test if `#[cfg(test)]`-attributed or named
    // `tests` (the workspace convention).
    if let Some(m) = header.iter().position(|t| t.is_ident("mod")) {
        let named_tests = header.get(m + 1).is_some_and(|t| t.is_ident("tests"));
        let cfg_test = header.windows(4).any(|w| {
            w[0].is_ident("cfg")
                && w[1].is_punct("(")
                && w[2].is_ident("test")
                && w[3].is_punct(")")
        });
        if named_tests || cfg_test {
            return ScopeKind::TestMod;
        }
    }

    // `impl .. <ProtocolTrait> for <Type>` headers.
    if header.first().is_some_and(|t| t.is_ident("impl")) {
        if let Some(f) = header.iter().position(|t| t.is_ident("for")) {
            if f > 0
                && header[f - 1].kind == TokKind::Ident
                && cfg.protocol_traits.contains(&header[f - 1].text)
            {
                return ScopeKind::ProtocolImpl;
            }
        }
    }
    ScopeKind::Block
}

/// Runs the ten token-level passes over one source file.
///
/// `file` is the label used in diagnostics *and* for path-based policy
/// (test files under a `tests/` directory are treated as test code; the
/// float-safety exemption list matches on path suffix). The
/// interprocedural passes need the whole workspace at once — use
/// [`analyze_files`] for those.
pub fn analyze_source(file: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut allow_used = vec![false; lexed.allows.len()];
    direct_diagnostics(file, &lexed, cfg, &mut allow_used)
}

/// The token-level passes, with allow-directive usage tracked into
/// `allow_used` (parallel to `lexed.allows`) for the stale-allow audit.
fn direct_diagnostics(
    file: &str,
    lexed: &Lexed,
    cfg: &LintConfig,
    allow_used: &mut [bool],
) -> Vec<Diagnostic> {
    let toks = &lexed.toks;
    let flags = scope_flags(toks, cfg);
    let file_is_test = file.contains("/tests/") || file.ends_with("/build.rs");
    let float_exempt = cfg.float_exempt_files.iter().any(|s| file.ends_with(s.as_str()));
    let fault_allowed = cfg.fault_allowed_paths.iter().any(|s| file.contains(s.as_str()));
    let churn_allowed = cfg.churn_allowed_paths.iter().any(|s| file.contains(s.as_str()));
    let par_allowed = cfg.par_allowed_paths.iter().any(|s| file.contains(s.as_str()));
    let serve_allowed = cfg.serve_allowed_paths.iter().any(|s| file.contains(s.as_str()));
    let backend_allowed = cfg.backend_allowed_paths.iter().any(|s| file.contains(s.as_str()));

    let mut out = Vec::new();
    let mut push = |pass: Pass, line: u32, message: String| {
        let mut suppressed = false;
        for (idx, (l, p)) in lexed.allows.iter().enumerate() {
            if (p == pass.name() || p == "all") && (*l == line || *l + 1 == line) {
                suppressed = true;
                allow_used[idx] = true;
            }
        }
        if !suppressed {
            out.push(Diagnostic { pass, file: file.to_string(), line, message });
        }
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        let in_test = file_is_test || flags[i].in_test;
        let in_proto = flags[i].in_protocol_impl;

        // ---- determinism -------------------------------------------------
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "HashMap" | "HashSet" => push(
                    Pass::Determinism,
                    t.line,
                    format!(
                        "`{}` iteration order is nondeterministic; use `BTree{}` (or a sorted Vec) so runs are reproducible",
                        t.text,
                        &t.text[4..]
                    ),
                ),
                "thread_rng" => push(
                    Pass::Determinism,
                    t.line,
                    "`thread_rng` is unseeded; thread a seeded `StdRng` through instead".to_string(),
                ),
                "SystemTime" | "Instant"
                    if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_ident("now")) =>
                {
                    push(
                        Pass::Determinism,
                        t.line,
                        format!(
                            "`{}::now()` makes algorithm output depend on wall-clock time; take time as an input",
                            t.text
                        ),
                    );
                }
                _ => {}
            }
        }

        // ---- locality ----------------------------------------------------
        if in_proto && t.kind == TokKind::Ident {
            let is_method_call = i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if is_method_call && cfg.locality_denied_methods.contains(&t.text) {
                push(
                    Pass::Locality,
                    t.line,
                    format!(
                        "`.{}()` reads global state inside a protocol impl; handlers may only use per-node state and `Ctx` (1-hop contract)",
                        t.text
                    ),
                );
            }
            if cfg.locality_denied_types.contains(&t.text) {
                push(
                    Pass::Locality,
                    t.line,
                    format!(
                        "`{}` names whole-network state inside a protocol impl; the paper's locality claim forbids handlers from seeing it",
                        t.text
                    ),
                );
            }
        }

        // ---- panic-safety ------------------------------------------------
        if in_proto && !in_test {
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                push(
                    Pass::PanicSafety,
                    t.line,
                    format!(
                        "`.{}()` in a protocol round handler can take the whole simulated network down; restructure to handle the `None`/`Err` arm",
                        t.text
                    ),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                push(
                    Pass::PanicSafety,
                    t.line,
                    format!(
                        "`{}!` in a protocol round handler; return early or propagate instead",
                        t.text
                    ),
                );
            }
            if t.is_punct("[") && i > 0 {
                let p = &toks[i - 1];
                let indexes = p.kind == TokKind::Ident && !is_keyword(&p.text)
                    || p.is_punct(")")
                    || p.is_punct("]");
                if indexes {
                    push(
                        Pass::PanicSafety,
                        t.line,
                        "direct indexing in a protocol round handler panics on out-of-range; use `.get()`".to_string(),
                    );
                }
            }
        }

        // ---- fault-scope -------------------------------------------------
        if t.kind == TokKind::Ident && cfg.fault_idents.contains(&t.text) {
            if in_proto {
                push(
                    Pass::FaultScope,
                    t.line,
                    format!(
                        "`{}` inside a protocol impl; protocols must not observe the fault model — hardening may only use retransmission and acknowledgement over `Ctx`",
                        t.text
                    ),
                );
            } else if !fault_allowed && !in_test {
                push(
                    Pass::FaultScope,
                    t.line,
                    format!(
                        "`{}` outside the simulator/runner layer; fault injection belongs to `crates/wsn` and the protocol runners (plus benches and tests)",
                        t.text
                    ),
                );
            }
        }

        // ---- churn-scope -------------------------------------------------
        if t.kind == TokKind::Ident && cfg.churn_idents.contains(&t.text) {
            if in_proto {
                push(
                    Pass::ChurnScope,
                    t.line,
                    format!(
                        "`{}` inside a protocol impl; protocols must not observe topology-change events — a node only ever sees its current neighbors via `Ctx`",
                        t.text
                    ),
                );
            } else if !churn_allowed && !in_test {
                push(
                    Pass::ChurnScope,
                    t.line,
                    format!(
                        "`{}` outside the churn layer; dynamic-network machinery belongs to `crates/wsn`, the incremental detector and the churn driver (plus benches and tests)",
                        t.text
                    ),
                );
            }
        }

        // ---- par-scope ---------------------------------------------------
        if t.kind == TokKind::Ident {
            let raw_thread = cfg.par_thread_idents.contains(&t.text)
                || (t.text == "thread" && toks.get(i + 1).is_some_and(|n| n.is_punct("::")));
            if raw_thread {
                if in_proto {
                    push(
                        Pass::ParScope,
                        t.line,
                        format!(
                            "`{}` inside a protocol impl; a simulated node is a single-threaded message handler and must not spawn, lock or share state",
                            t.text
                        ),
                    );
                } else if !par_allowed && !in_test {
                    push(
                        Pass::ParScope,
                        t.line,
                        format!(
                            "`{}` outside `crates/par`; raw threading machinery lives in the deterministic pool — call `ballfit_par::par_map` (or siblings) instead",
                            t.text
                        ),
                    );
                }
            } else if in_proto && cfg.par_api_idents.contains(&t.text) {
                push(
                    Pass::ParScope,
                    t.line,
                    format!(
                        "`{}` inside a protocol impl; even the deterministic pool is off-limits to handlers — parallelism is an orchestration concern, not a node behaviour",
                        t.text
                    ),
                );
            }
        }

        // ---- obs-scope ---------------------------------------------------
        if in_proto && !in_test && t.kind == TokKind::Ident && cfg.obs_idents.contains(&t.text) {
            push(
                Pass::ObsScope,
                t.line,
                format!(
                    "`{}` inside a protocol impl; only the simulator and the detectors emit traces — message handlers must stay observation-free",
                    t.text
                ),
            );
        }

        // ---- recovery-scope ----------------------------------------------
        if in_proto && !in_test && t.kind == TokKind::Ident && cfg.recovery_idents.contains(&t.text)
        {
            push(
                Pass::RecoveryScope,
                t.line,
                format!(
                    "`{}` inside a protocol impl; checkpoint/restore is an orchestration concern — a handler snapshotting or restoring its own state would break replay byte-identity",
                    t.text
                ),
            );
        }

        // ---- serve-scope -------------------------------------------------
        if t.kind == TokKind::Ident && cfg.serve_idents.contains(&t.text) {
            if in_proto {
                push(
                    Pass::ServeScope,
                    t.line,
                    format!(
                        "`{}` inside a protocol impl; the service layer sits above the simulator — a message handler must not talk to the daemon",
                        t.text
                    ),
                );
            } else if !serve_allowed && !in_test {
                push(
                    Pass::ServeScope,
                    t.line,
                    format!(
                        "`{}` outside `crates/serve`; the wire/service API belongs to the daemon layer (plus the CLI, benches and tests) — algorithm crates must not depend on it",
                        t.text
                    ),
                );
            }
        }

        // ---- backend-scope -----------------------------------------------
        if t.kind == TokKind::Ident && cfg.backend_idents.contains(&t.text) {
            if in_proto {
                push(
                    Pass::BackendScope,
                    t.line,
                    format!(
                        "`{}` inside a protocol impl; backends adapt whole detection pipelines — a message handler must not reach up into the backend layer",
                        t.text
                    ),
                );
            } else if !backend_allowed && !in_test {
                push(
                    Pass::BackendScope,
                    t.line,
                    format!(
                        "`{}` outside `crates/backends` (and its consumers `crates/serve` / `crates/cli`); the pipeline must compile without knowing the backend trait exists",
                        t.text
                    ),
                );
            }
        }

        // ---- float-safety ------------------------------------------------
        if !in_test && !float_exempt {
            if t.is_ident("partial_cmp") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                if let Some(j) = skip_balanced_parens(toks, i + 1) {
                    if toks.get(j).is_some_and(|n| n.is_punct("."))
                        && toks
                            .get(j + 1)
                            .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                    {
                        push(
                            Pass::FloatSafety,
                            t.line,
                            "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` for a total order".to_string(),
                        );
                    }
                }
            }
            if t.is_punct("==") || t.is_punct("!=") {
                let float_beside = float_operand(toks, i.wrapping_sub(1), false)
                    || float_operand(toks, i + 1, true);
                if float_beside {
                    push(
                        Pass::FloatSafety,
                        t.line,
                        format!(
                            "`{}` against a float literal is exact-equality on f64; compare with a tolerance or justify with `// ballfit-lint: allow(float-safety)`",
                            t.text
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Workspace-level analysis result: all diagnostics (token-level +
/// interprocedural) plus the symbol-table sizes the report records.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (file, line, pass, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files analyzed.
    pub files: usize,
    /// Number of functions in the workspace symbol table.
    pub functions: usize,
}

/// The three transitive sink→source passes share one driver; this names
/// the per-pass specifics.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Transitive {
    Determinism,
    Panic,
    Locality,
}

impl Transitive {
    fn pass(self) -> Pass {
        match self {
            Transitive::Determinism => Pass::DeterminismTaint,
            Transitive::Panic => Pass::PanicReachability,
            Transitive::Locality => Pass::TransitiveLocality,
        }
    }
}

/// Runs all fifteen passes over a set of in-memory files. This is the
/// primary entry point: [`crate::analyze_workspace`] reads the
/// workspace's sources and delegates here, and the splice tests feed it
/// doctored file sets directly.
pub fn analyze_files(files: &[(String, String)], cfg: &LintConfig) -> Analysis {
    let units: Vec<FileUnit> =
        files.iter().map(|(label, src)| FileUnit::new(label.clone(), src)).collect();
    let mut allow_used: Vec<Vec<bool>> =
        units.iter().map(|u| vec![false; u.lexed.allows.len()]).collect();

    let mut diags = Vec::new();
    for (u, used) in units.iter().zip(allow_used.iter_mut()) {
        diags.extend(direct_diagnostics(&u.label, &u.lexed, cfg, used));
    }

    let graph = CallGraph::build(&units, cfg);
    for kind in [Transitive::Determinism, Transitive::Panic, Transitive::Locality] {
        run_transitive(kind, &units, &graph, cfg, &mut allow_used, &mut diags);
    }

    // Stale-allow audit: every directive must have earned its keep above.
    let known: Vec<&str> = Pass::ALL.iter().map(|p| p.name()).collect();
    for (u, used) in units.iter().zip(allow_used.iter()) {
        for ((line, pass), used) in u.lexed.allows.iter().zip(used.iter()) {
            if *used {
                continue;
            }
            let message = if pass == "all" || known.contains(&pass.as_str()) {
                format!(
                    "`allow({pass})` suppresses no findings; stale escape hatches hide real regressions — delete the directive"
                )
            } else {
                format!("`allow({pass})` names no known pass; fix the typo or delete the directive")
            };
            diags.push(Diagnostic {
                pass: Pass::StaleAllow,
                file: u.label.clone(),
                line: *line,
                message,
            });
        }
    }

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass.name(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.pass.name(),
            b.message.as_str(),
        ))
    });
    diags.dedup();
    Analysis { diagnostics: diags, files: units.len(), functions: graph.fns.len() }
}

/// One sink→source pass: find every sink fn, BFS to the nearest
/// source-carrying fn, report the chain.
fn run_transitive(
    kind: Transitive,
    units: &[FileUnit],
    graph: &CallGraph,
    cfg: &LintConfig,
    allow_used: &mut [Vec<bool>],
    diags: &mut Vec<Diagnostic>,
) {
    let pass = kind.pass();
    // Source scan: first unexcused source token per fn. An
    // `allow(<pass>)` on the source line marks an audited invariant —
    // the source is excused and the directive counts as used.
    let sources: Vec<Option<(u32, String)>> = graph
        .fns
        .iter()
        .map(|f| {
            if f.is_test {
                return None;
            }
            let trusted = f.owner.as_ref().is_some_and(|o| cfg.trusted_owners.contains(o));
            if trusted {
                return None;
            }
            scan_sources(kind, &units[f.file_idx], f, cfg, &mut allow_used[f.file_idx])
        })
        .collect();

    for (i, f) in graph.fns.iter().enumerate() {
        if !is_sink(kind, f, cfg) {
            continue;
        }
        let Some(path) = graph.shortest_path(i, cfg, |j| sources[j].is_some()) else {
            continue;
        };
        let src_fn = *path.last().expect("path is non-empty");
        let (src_line, src_desc) = sources[src_fn].clone().expect("target carries a source");
        let chain = path.iter().map(|&k| format!("`{}`", graph.fns[k].label())).collect::<Vec<_>>();
        let src_file = &units[graph.fns[src_fn].file_idx].label;
        let detail =
            format!("{src_desc} at {src_file}:{src_line} via {}", chain.join(" \u{2192} "));
        let message = match kind {
            Transitive::Determinism => format!(
                "`{}` transitively reaches nondeterminism: {detail}; same-seed runs must stay byte-identical — make the helper deterministic or take the value as an input",
                f.label()
            ),
            Transitive::Panic => format!(
                "`{}` can transitively panic: {detail}; handle the failure arm in the helper, or annotate the checked invariant with `// ballfit-lint: allow(panic-reachability)` at the panic site",
                f.label()
            ),
            Transitive::Locality => format!(
                "`{}` reaches global network state through helpers: {detail}; the paper's 1-hop contract forbids handlers from consulting whole-network structures even indirectly",
                f.label()
            ),
        };
        // The sink's own line can carry an allow too (for deliberate
        // regression fixtures).
        let sink_unit = &units[f.file_idx];
        let mut suppressed = false;
        for (idx, (l, p)) in sink_unit.lexed.allows.iter().enumerate() {
            if (p == pass.name() || p == "all") && (*l == f.line || *l + 1 == f.line) {
                suppressed = true;
                allow_used[f.file_idx][idx] = true;
            }
        }
        if !suppressed {
            diags.push(Diagnostic { pass, file: sink_unit.label.clone(), line: f.line, message });
        }
    }
}

/// Is `f` a sink for this transitive pass?
fn is_sink(kind: Transitive, f: &FnNode, cfg: &LintConfig) -> bool {
    if f.is_test || f.body.is_none() {
        return false;
    }
    let protocol = f.trait_name.as_ref().is_some_and(|t| cfg.protocol_traits.contains(t));
    match kind {
        Transitive::Determinism => protocol || cfg.taint_entry_points.contains(&f.label()),
        Transitive::Panic | Transitive::Locality => protocol,
    }
}

/// Scans one fn for source tokens of the given transitive pass. Returns
/// the first unexcused source; excused sources mark their directive used.
fn scan_sources(
    kind: Transitive,
    unit: &FileUnit,
    f: &FnNode,
    cfg: &LintConfig,
    allow_used: &mut [bool],
) -> Option<(u32, String)> {
    let toks = &unit.lexed.toks;
    let Some((blo, bhi)) = f.body else { return None };
    let pass_name = kind.pass().name();
    let mut excuse = |line: u32| -> bool {
        let mut hit = false;
        for (idx, (l, p)) in unit.lexed.allows.iter().enumerate() {
            if p == pass_name && (*l == line || *l + 1 == line) {
                hit = true;
                allow_used[idx] = true;
            }
        }
        hit
    };
    // Locality also denies *naming* whole-network types, and a signature
    // mention (`model: &NetworkModel`) is as load-bearing as a body one.
    let (lo, hi) = match kind {
        Transitive::Locality => (f.sig.0, bhi.min(toks.len())),
        _ => (blo, bhi.min(toks.len())),
    };
    for i in lo..hi {
        let t = &toks[i];
        let found: Option<String> = match kind {
            Transitive::Determinism => match t.text.as_str() {
                "HashMap" | "HashSet" | "RandomState" if t.kind == TokKind::Ident => {
                    Some(format!("`{}`", t.text))
                }
                "thread_rng" | "from_entropy" if t.kind == TokKind::Ident => {
                    Some(format!("`{}`", t.text))
                }
                "SystemTime" | "Instant"
                    if t.kind == TokKind::Ident
                        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|n| n.is_ident("now")) =>
                {
                    Some(format!("`{}::now()`", t.text))
                }
                _ => None,
            },
            Transitive::Panic => {
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_err" | "expect_err")
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    Some(format!("`.{}()`", t.text))
                } else if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                {
                    Some(format!("`{}!`", t.text))
                } else if t.is_punct("[") && i > 0 {
                    let p = &toks[i - 1];
                    let indexes = p.kind == TokKind::Ident && !is_keyword(&p.text)
                        || p.is_punct(")")
                        || p.is_punct("]");
                    // Only body indexing counts; `[` can't appear in the
                    // sig scan range for this pass.
                    indexes.then(|| "direct indexing".to_string())
                } else {
                    None
                }
            }
            Transitive::Locality => {
                if t.kind == TokKind::Ident && cfg.locality_denied_types.contains(&t.text) {
                    Some(format!("`{}`", t.text))
                } else if i >= blo
                    && t.kind == TokKind::Ident
                    && cfg.locality_denied_methods.contains(&t.text)
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    Some(format!("`.{}()`", t.text))
                } else {
                    None
                }
            }
        };
        if let Some(desc) = found {
            if !excuse(t.line) {
                return Some((t.line, desc));
            }
        }
    }
    None
}

/// Is the operand at `i` (looking `forward` or backward from a `==`) a
/// float literal or a well-known non-finite f64 constant?
fn float_operand(toks: &[Tok], i: usize, forward: bool) -> bool {
    let Some(mut t) = toks.get(i) else { return false };
    let mut i = i;
    // Unary minus on the right-hand side: `x == -1.0`.
    if forward && t.is_punct("-") {
        match toks.get(i + 1) {
            Some(next) => {
                t = next;
                i += 1;
            }
            None => return false,
        }
    }
    // Qualified consts on the right-hand side: `x == f64::INFINITY`.
    if forward
        && (t.is_ident("f64") || t.is_ident("f32"))
        && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
    {
        match toks.get(i + 2) {
            Some(next) => t = next,
            None => return false,
        }
    }
    if t.kind == TokKind::Number && is_float_literal(&t.text) {
        return true;
    }
    t.kind == TokKind::Ident
        && matches!(t.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON")
}

/// Given `open` pointing at `(`, returns the index just past its matching
/// `)`, or `None` if unbalanced.
fn skip_balanced_parens(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "as"
            | "where"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(file: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(file, src, &LintConfig::default())
    }

    fn passes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.pass.name()).collect()
    }

    // ---- determinism ----------------------------------------------------

    #[test]
    fn determinism_flags_hashmap_iteration() {
        // The acceptance scenario: a HashMap sneaks into protocols.rs.
        let src = r#"
            use std::collections::HashMap;
            pub struct S { received: HashMap<usize, Vec<f64>> }
            impl S {
                fn drain(&self) {
                    for (k, v) in &self.received { let _ = (k, v); }
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert!(diags.iter().all(|d| d.pass == Pass::Determinism), "{diags:?}");
        assert_eq!(diags.len(), 2, "use-decl and field type: {diags:?}");
        assert!(diags[0].message.contains("BTreeMap"));
    }

    #[test]
    fn determinism_flags_clock_and_rng() {
        let src = "fn f() { let t = Instant::now(); let r = rand::thread_rng(); }";
        let diags = run("crates/core/src/x.rs", src);
        assert_eq!(passes(&diags), vec!["determinism", "determinism"]);
    }

    #[test]
    fn determinism_clean_on_btreemap_and_seeded_rng() {
        let src = "use std::collections::BTreeMap;\nfn f() { let r = StdRng::seed_from_u64(7); let i = Instant::elapsed; }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn determinism_ignores_strings_and_comments() {
        let src = "// HashMap here\nfn f() { let s = \"HashMap\"; }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    // ---- locality -------------------------------------------------------

    #[test]
    fn locality_flags_global_accessors_in_protocol_impl() {
        let src = r#"
            impl Protocol for Probe {
                type Msg = ();
                fn on_message(&mut self, from: NodeId, _m: &(), ctx: &mut Ctx<'_, ()>) {
                    let p = self.model.positions();
                    let n = self.topo.closed_k_hop_neighborhood(from, 2);
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["locality", "locality"], "{diags:?}");
    }

    #[test]
    fn locality_flags_global_types_in_protocol_impl() {
        let src = r#"
            impl Protocol for Probe {
                type Msg = ();
                fn on_start(&mut self, _ctx: &mut Ctx<'_, ()>) {
                    let m: &NetworkModel = todo();
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["locality"]);
    }

    #[test]
    fn locality_allows_one_hop_queries_and_setup_code() {
        let src = r#"
            impl UbfProtocol {
                // Inherent impl: setup/harvest code may read the model.
                pub fn for_model(model: &NetworkModel) { let _ = model.positions(); }
            }
            impl Protocol for UbfProtocol {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let n = ctx.neighbors();
                    ctx.broadcast(());
                }
            }
        "#;
        assert!(run("crates/core/src/protocols.rs", src).is_empty());
    }

    // ---- panic-safety ---------------------------------------------------

    #[test]
    fn panic_safety_flags_unwrap_expect_panic_indexing() {
        let src = r#"
            impl Protocol for P {
                type Msg = u32;
                fn on_message(&mut self, f: NodeId, m: &u32, _c: &mut Ctx<'_, u32>) {
                    let a = self.label.unwrap();
                    let b = self.label.expect("labeled");
                    if *m > 3 { panic!("bad message"); }
                    let c = self.table[f];
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(
            passes(&diags),
            vec!["panic-safety", "panic-safety", "panic-safety", "panic-safety"],
            "{diags:?}"
        );
    }

    #[test]
    fn panic_safety_exempts_tests_and_non_protocol_code() {
        let src = r#"
            fn helper() { let x = maybe().unwrap(); }
            #[cfg(test)]
            mod tests {
                impl Protocol for P {
                    type Msg = ();
                    fn on_start(&mut self, _c: &mut Ctx<'_, ()>) { self.x.unwrap(); }
                }
            }
        "#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_safety_does_not_flag_attributes_or_slice_types() {
        let src = r#"
            impl Protocol for P {
                type Msg = ();
                #[inline]
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let v: &[u32] = ctx.neighbors();
                    let a = [0u8; 4];
                    for x in v { let _ = x; }
                }
            }
        "#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    // ---- float-safety ---------------------------------------------------

    #[test]
    fn float_safety_flags_nan_unsafe_sort_and_float_eq() {
        let src = r#"
            fn f(mut v: Vec<f64>, x: f64) -> bool {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                x == 0.0
            }
        "#;
        let diags = run("crates/core/src/x.rs", src);
        assert_eq!(passes(&diags), vec!["float-safety", "float-safety", "float-safety"]);
        assert!(diags[0].message.contains("total_cmp"));
    }

    #[test]
    fn float_safety_clean_on_total_cmp_and_int_eq() {
        let src = r#"
            fn f(mut v: Vec<f64>, n: usize) -> bool {
                v.sort_by(f64::total_cmp);
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                n == 0
            }
        "#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_safety_exempts_predicates_and_tests() {
        let eq = "fn f(x: f64) -> bool { x == 1.0 }";
        assert!(run("crates/geom/src/predicates.rs", eq).is_empty());
        assert!(run("crates/geom/tests/properties.rs", eq).is_empty());
        let in_mod = "#[cfg(test)]\nmod tests { fn f(x: f64) -> bool { x == 1.0 } }";
        assert!(run("crates/geom/src/x.rs", in_mod).is_empty());
    }

    // ---- fault-scope ----------------------------------------------------

    #[test]
    fn fault_scope_flags_fault_plan_inside_protocol_impl() {
        // Even in the runner module, a Protocol impl peeking at the fault
        // model breaks the abstraction: protocols must be fault-oblivious.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    if self.plan.loss > 0.0 { let _p: &FaultPlan = &self.plan; }
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["fault-scope"], "{diags:?}");
        assert!(diags[0].message.contains("protocol impl"));
    }

    #[test]
    fn fault_scope_flags_fault_idents_outside_the_harness() {
        let src = "pub fn detect(plan: &FaultPlan) { let _ = plan; }";
        let diags = run("crates/core/src/detector.rs", src);
        assert_eq!(passes(&diags), vec!["fault-scope"], "{diags:?}");
        let src = "fn seed() -> SplitMix64 { SplitMix64::new(7) }";
        let diags = run("crates/geom/src/noise.rs", src);
        assert_eq!(passes(&diags), vec!["fault-scope", "fault-scope"]);
    }

    #[test]
    fn fault_scope_allows_the_simulator_and_runner_layers() {
        let wsn = "pub struct FaultPlan { pub loss: f64 }\nfn go(s: &mut Simulator) { s.run_with_faults(8, &FaultPlan::none()); }";
        assert!(run("crates/wsn/src/faults.rs", wsn).is_empty());
        let runner = "pub fn run_hardened(plan: &FaultPlan) { let _ = plan; }";
        assert!(run("crates/core/src/protocols.rs", runner).is_empty());
    }

    #[test]
    fn fault_scope_exempts_test_code_outside_the_harness() {
        let in_mod = "#[cfg(test)]\nmod tests { fn f(p: &FaultPlan) { let _ = p; } }";
        assert!(run("crates/core/src/detector.rs", in_mod).is_empty());
        let in_tests_dir = "fn f(p: &FaultPlan) { let _ = p; }";
        assert!(run("crates/core/tests/robust.rs", in_tests_dir).is_empty());
    }

    // ---- churn-scope ----------------------------------------------------

    #[test]
    fn churn_scope_flags_churn_types_inside_protocol_impl() {
        // A protocol peeking at topology events breaks the locality story:
        // nodes observe neighbor changes only through their current view.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let _ev: &TopologyEvent = &self.pending;
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["churn-scope"], "{diags:?}");
        assert!(diags[0].message.contains("protocol impl"));
    }

    #[test]
    fn churn_scope_flags_churn_idents_outside_the_churn_layer() {
        let src = "pub fn detect(dynamic: &DynamicTopology) { let _ = dynamic; }";
        let diags = run("crates/core/src/detector.rs", src);
        assert_eq!(passes(&diags), vec!["churn-scope"], "{diags:?}");
        let src = "fn plan() -> ChurnPlan { ChurnPlan::none() }";
        let diags = run("crates/netgen/src/builder.rs", src);
        assert_eq!(passes(&diags), vec!["churn-scope", "churn-scope"]);
    }

    #[test]
    fn churn_scope_allows_the_churn_layer() {
        let wsn = "pub struct DynamicTopology { pub range: f64 }\nfn go(d: &mut DynamicTopology, ev: &TopologyEvent) { let _ = (d, ev); }";
        assert!(run("crates/wsn/src/churn.rs", wsn).is_empty());
        let inc = "pub fn apply(d: &DynamicTopology) -> BoundaryDiff { BoundaryDiff::default() }";
        assert!(run("crates/core/src/incremental.rs", inc).is_empty());
        let driver = "pub fn step(d: &mut ChurnDriver, ev: &ChurnEvent) { let _ = (d, ev); }";
        assert!(run("crates/netgen/src/churn.rs", driver).is_empty());
    }

    #[test]
    fn churn_scope_exempts_test_code_outside_the_churn_layer() {
        let in_mod = "#[cfg(test)]\nmod tests { fn f(p: &ChurnPlan) { let _ = p; } }";
        assert!(run("crates/core/src/detector.rs", in_mod).is_empty());
        let in_tests_dir = "fn f(d: &DynamicTopology) { let _ = d; }";
        assert!(run("crates/core/tests/churn.rs", in_tests_dir).is_empty());
    }

    // ---- par-scope ------------------------------------------------------

    #[test]
    fn par_scope_flags_raw_threading_inside_protocol_impl() {
        // A simulated node spawning real threads (or sharing state through
        // a lock) breaks the single-threaded-handler model outright.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let _h = std::thread::spawn(|| ());
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["par-scope"], "{diags:?}");
        assert!(diags[0].message.contains("single-threaded"));
    }

    #[test]
    fn par_scope_flags_pool_api_inside_protocol_impl() {
        // Even the deterministic pool is an orchestration tool; handlers
        // must not fan work out.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let _o = par_map(self.par, &self.items, |x| *x);
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["par-scope"], "{diags:?}");
        assert!(diags[0].message.contains("orchestration"));
    }

    #[test]
    fn par_scope_flags_raw_threading_outside_the_pool_crate() {
        let src = "pub fn detect(m: &Mutex<u32>) { let _ = m; }";
        let diags = run("crates/core/src/detector.rs", src);
        assert_eq!(passes(&diags), vec!["par-scope"], "{diags:?}");
        let src = "use std::sync::atomic::AtomicUsize;\nfn go() { let _ = std::thread::available_parallelism(); }";
        let diags = run("crates/core/src/metrics.rs", src);
        assert_eq!(passes(&diags), vec!["par-scope", "par-scope", "par-scope"], "{diags:?}");
    }

    #[test]
    fn par_scope_allows_the_pool_crate_and_the_pool_api_elsewhere() {
        let pool = "fn go() { std::thread::scope(|s| { let _ = s; }); let c = AtomicUsize::new(0); let _ = c; }";
        assert!(run("crates/par/src/lib.rs", pool).is_empty());
        // Algorithm code reaching parallelism through the API is the point.
        let api =
            "pub fn sweep(par: Parallelism, xs: &[u32]) -> Vec<u32> { par_map(par, xs, |x| *x) }";
        assert!(run("crates/core/src/detector.rs", api).is_empty());
    }

    #[test]
    fn par_scope_exempts_test_code_outside_the_pool_crate() {
        let in_mod =
            "#[cfg(test)]\nmod tests { fn f() { let _ = std::thread::available_parallelism(); } }";
        assert!(run("crates/core/src/detector.rs", in_mod).is_empty());
        let in_tests_dir = "fn f(m: &Mutex<u32>) { let _ = m; }";
        assert!(run("crates/core/tests/parallel.rs", in_tests_dir).is_empty());
    }

    // ---- obs-scope ------------------------------------------------------

    #[test]
    fn obs_scope_flags_trace_api_inside_protocol_impl() {
        // A protocol writing its own trace records could skew the very
        // accounting the observability layer exists to certify.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let mut t = Trace::enabled();
                    t.event(TraceEvent::Counter { name: "cheat", value: 1 });
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["obs-scope", "obs-scope"], "{diags:?}");
        assert!(diags[0].message.contains("observation-free"));
    }

    #[test]
    fn obs_scope_allows_runners_detectors_and_msg_bytes() {
        // The runner layer owns the trace; inherent impls and free fns are
        // fine everywhere.
        let runner = "pub fn run_traced(trace: &mut Trace) { let _ = trace; }";
        assert!(run("crates/core/src/protocols.rs", runner).is_empty());
        let detector = "pub fn detect_view_traced(t: &mut Trace) { t.event(TraceEvent::NetSize { nodes: 1, edges: 0 }); }";
        assert!(run("crates/core/src/detector.rs", detector).is_empty());
        // MsgBytes is required by the Protocol::Msg bound and stays legal
        // inside protocol impls.
        let msg = r#"
            impl Protocol for P {
                type Msg = u32;
                fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                    let _n = MsgBytes::msg_bytes(&0u32);
                }
            }
        "#;
        assert!(run("crates/core/src/protocols.rs", msg).is_empty());
    }

    #[test]
    fn obs_scope_exempts_test_code() {
        let in_mod = "#[cfg(test)]\nmod tests { impl Protocol for P { type Msg = (); fn on_start(&mut self, _c: &mut Ctx<'_, ()>) { let _t = Trace::disabled(); } } }";
        assert!(run("crates/core/src/protocols.rs", in_mod).is_empty());
    }

    // ---- recovery-scope -------------------------------------------------

    #[test]
    fn recovery_scope_flags_checkpoint_api_inside_protocol_impl() {
        // A handler snapshotting or restoring its own state sidesteps the
        // replay-identity pins that make crash recovery auditable.
        let src = r#"
            impl Protocol for Cheater {
                type Msg = ();
                fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                    let snap: DetectorCheckpoint = self.checkpoint();
                }
            }
        "#;
        let diags = run("crates/core/src/protocols.rs", src);
        assert_eq!(passes(&diags), vec!["recovery-scope", "recovery-scope"], "{diags:?}");
        assert!(diags[0].message.contains("orchestration"));
    }

    #[test]
    fn recovery_scope_allows_orchestration_code_and_tests() {
        // The incremental detector and the chaos layer own the API.
        let inc = "pub fn checkpoint(&self) -> DetectorCheckpoint { self.state.snapshot() }";
        assert!(run("crates/core/src/incremental.rs", inc).is_empty());
        let wsn = "pub fn restore(snap: &TopologySnapshot) -> DynamicTopology { snap.build() }";
        assert!(run("crates/wsn/src/churn.rs", wsn).is_empty());
        let in_mod = "#[cfg(test)]\nmod tests { impl Protocol for P { type Msg = (); fn on_start(&mut self, _c: &mut Ctx<'_, ()>) { let _s = self.checkpoint(); } } }";
        assert!(run("crates/core/src/protocols.rs", in_mod).is_empty());
    }

    // ---- escape hatch ---------------------------------------------------

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let same = "fn f(x: f64) -> bool { x == 0.0 } // ballfit-lint: allow(float-safety)";
        assert!(run("crates/core/src/x.rs", same).is_empty());
        let prev = "// ballfit-lint: allow(float-safety)\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(run("crates/core/src/x.rs", prev).is_empty());
    }

    #[test]
    fn allow_directive_is_pass_specific() {
        // A float-safety allow does not silence determinism on that line.
        let src = "use std::collections::HashMap; // ballfit-lint: allow(float-safety)";
        let diags = run("crates/core/src/x.rs", src);
        assert_eq!(passes(&diags), vec!["determinism"]);
        // ...but allow(all) does.
        let all = "use std::collections::HashMap; // ballfit-lint: allow(all)";
        assert!(run("crates/core/src/x.rs", all).is_empty());
    }
}
