//! A minimal Rust lexer sufficient for token-level invariant analysis.
//!
//! The analyzer does not need a full AST: every pass in [`crate::passes`]
//! matches short token sequences (`HashMap`, `. unwrap (`,
//! `partial_cmp ( .. ) . expect`) inside scopes that are recognizable from
//! brace structure (`mod tests {`, `impl Protocol for X {`). What *does*
//! matter is never mistaking the inside of a string, char literal, or
//! comment for code — so this lexer handles the full literal grammar
//! (raw strings with arbitrary `#` counts, byte strings, escapes,
//! lifetimes vs. char literals, nested block comments) and throws away
//! everything else.
//!
//! Line comments are additionally scanned for suppression directives of
//! the form `// ballfit-lint: allow(pass-a, pass-b)`; see
//! [`Lexed::allows`].

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `HashMap`, ...).
    Ident,
    /// Numeric literal (`0`, `1.5`, `0x1F`, `1e-3`, `2.0f64`).
    Number,
    /// String or byte-string literal (raw or cooked); text is dropped.
    Str,
    /// Char or byte-char literal; text is dropped.
    Char,
    /// Lifetime (`'a`, `'static`); text excludes the quote.
    Lifetime,
    /// Operator or delimiter. Common multi-character operators (`::`,
    /// `==`, `!=`, `->`, `..=`, ...) are fused into one token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (empty for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Convenience: is this an identifier with exactly `text`?
    #[inline]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Convenience: is this punctuation with exactly `text`?
    #[inline]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Lexer output: the token stream plus suppression directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// `(line, pass-name)` pairs harvested from
    /// `// ballfit-lint: allow(...)` comments. The pass name `all`
    /// suppresses every pass.
    pub allows: Vec<(u32, String)>,
}

/// Multi-character operators fused into single punct tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `src`. Unterminated literals or comments end the token
/// stream early rather than erroring: for lint purposes a truncated tail
/// is indistinguishable from end-of-file.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_directive(&src[start..i], line, &mut out.allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Attribute the token to its *opening* quote (matching raw
                // strings), not to whatever line the literal ends on.
                let tok_line = line;
                i = skip_cooked_string(b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && b.get(i + 2) != Some(&b'\'') {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    i = skip_char_literal(b, i, &mut line);
                    out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                }
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let tok_line = line;
                i = skip_prefixed_literal(b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok { kind: TokKind::Ident, text: src[start..i].to_string(), line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: `1e-3`, `2E+5`.
                        if (d == b'e' || d == b'E')
                            && !src[start..].starts_with("0x")
                            && !src[start..].starts_with("0b")
                            && !src[start..].starts_with("0o")
                            && matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                            && b.get(i + 2).is_some_and(u8::is_ascii_digit)
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // Decimal point only when followed by a digit, so
                        // `0..n` and `1.max(x)` lex as separate tokens.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok { kind: TokKind::Number, text: src[start..i].to_string(), line });
            }
            _ => {
                let rest = &src[i..];
                let mut matched = 1;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        matched = op.len();
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + matched].to_string(),
                    line,
                });
                i += matched;
            }
        }
    }
    out
}

/// Is a float literal for the purposes of the float-safety pass?
///
/// A naive `contains('e')` test misclassifies suffixed integers — the
/// `e` of `3usize` or `12uTest` is part of the *suffix*, not an
/// exponent. Only three shapes make a literal float: a decimal point
/// after the digit run, an exponent (`e`/`E` with an optional sign and
/// at least one digit), or an explicit `f32`/`f64` suffix.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i < b.len() && b[i] == b'.' {
        return true;
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            return true;
        }
    }
    matches!(&text[i..], "f32" | "f64")
}

fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  b"..."  br"..."  rb is not a thing; b'..' handled
    // here too. Raw identifiers (`r#match`) are NOT literals.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') {
            return true; // byte char b'x'
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        let mut k = j;
        while b.get(k) == Some(&b'#') {
            k += 1;
        }
        // `r#"..."` is a raw string, `r#ident` is a raw identifier.
        return b.get(k) == Some(&b'"');
    }
    b.get(j) == Some(&b'"')
}

/// Skips `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`, `b'…'` starting at `i`
/// (which points at the `b`/`r` prefix). Returns the index past the
/// literal.
fn skip_prefixed_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
        if b.get(i) == Some(&b'\'') {
            return skip_char_literal(b, i, line);
        }
    }
    let mut hashes = 0usize;
    if b.get(i) == Some(&b'r') {
        i += 1;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        // Raw string: no escapes; terminated by `"` + `hashes` hashes.
        debug_assert_eq!(b.get(i), Some(&b'"'));
        i += 1;
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if b[i] == b'"'
                && b[i + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
            {
                return i + 1 + hashes;
            } else {
                i += 1;
            }
        }
        return i;
    }
    skip_cooked_string(b, i, line)
}

/// Skips a cooked (escaped) string starting at the opening quote.
fn skip_cooked_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape (`\` at end of line) consumes
                // the newline; count it or every later token in the file
                // is attributed one line early.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a char/byte-char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'\'');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                // Malformed; treat the quote as punctuation-ish and move on.
                *line += 1;
                return i;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parses `ballfit-lint: allow(a, b)` out of one line comment.
fn scan_directive(comment: &str, line: u32, allows: &mut Vec<(u32, String)>) {
    let Some(at) = comment.find("ballfit-lint:") else {
        return;
    };
    let rest = comment[at + "ballfit-lint:".len()..].trim_start();
    let Some(inner) = rest.strip_prefix("allow").map(str::trim_start) else {
        return;
    };
    let Some(inner) = inner.strip_prefix('(') else {
        return;
    };
    let Some(end) = inner.find(')') else {
        return;
    };
    for pass in inner[..end].split(',') {
        let pass = pass.trim();
        if !pass.is_empty() {
            allows.push((line, pass.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r###"
            let a = "HashMap::new()"; // HashMap in comment
            /* HashMap /* nested */ still comment */
            let b = r#"thread_rng"#;
            let c = 'H';
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").toks;
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("a.4.partial_cmp(&b.4); 0..24; 1.0f64.total_cmp(&x)").toks;
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"partial_cmp"));
        assert!(texts.contains(&"total_cmp"));
        assert!(texts.contains(&".."));
        assert!(texts.contains(&"1.0f64"));
    }

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5e3"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0x1F"));
    }

    #[test]
    fn multi_char_operators_fuse() {
        let toks = lex("a == b; c != 0.0; d ..= e; f :: g").toks;
        let puncts: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str()).collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn directives_are_harvested() {
        let src = "let x = 1; // ballfit-lint: allow(float-safety, determinism)\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            vec![(1, "float-safety".to_string()), (1, "determinism".to_string())]
        );
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ids = idents("let r#type = 3; br#\"HashMap\"#;");
        assert!(ids.contains(&"r".to_string()) || ids.contains(&"type".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\none\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn raw_strings_do_not_leak_directives() {
        // A `//` inside a raw string is data, not a comment — a directive
        // there must NOT be harvested.
        let src = "let a = r#\"// ballfit-lint: allow(determinism)\"#;\nlet b = 1;\n";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty(), "{:?}", lexed.allows);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b_tok.line, 2);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        // `"#` inside an `r##"..."##` literal does not terminate it.
        let ids = idents("let a = r##\"quote \"# HashMap inside\"##; let b = 0;");
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        let src = "/* outer /* inner\n /* deeper */ */ still\n */ let a = 1;\n";
        let lexed = lex(src);
        let a_tok = lexed.toks.iter().find(|t| t.is_ident("a")).expect("a lexed");
        assert_eq!(a_tok.line, 3);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn suffixed_integers_are_not_floats() {
        // `3usize` contains an `e` but it belongs to the suffix, not an
        // exponent; same for `7u32`/`255u8`.
        assert!(!is_float_literal("3usize"));
        assert!(!is_float_literal("7u32"));
        assert!(!is_float_literal("255u8"));
        assert!(!is_float_literal("1_000i64"));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("1E-9"));
        assert!(is_float_literal("1_0.5"));
        assert!(is_float_literal("2.")); // trailing-dot float
        assert!(!is_float_literal("0xEE"));
    }

    #[test]
    fn string_line_continuations_count_newlines() {
        // `\` at end of line inside a cooked string consumes the newline;
        // the line counter must still advance.
        let src = "let a = \"one \\\ntwo\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn cooked_strings_report_their_opening_line() {
        let src = "let a = \"one\ntwo\"; let c = 2;\nlet b = 1;\n";
        let lexed = lex(src);
        let s = lexed.toks.iter().find(|t| t.kind == TokKind::Str).expect("str lexed");
        assert_eq!(s.line, 1);
        let c_tok = lexed.toks.iter().find(|t| t.is_ident("c")).expect("c lexed");
        assert_eq!(c_tok.line, 2);
    }
}
