//! `ballfit-lint` — static invariant analyzer for the ballfit workspace.
//!
//! The paper's correctness contract is not just "the tests pass": the
//! pipeline must be **deterministic** (same seed ⇒ same network ⇒ same
//! boundary, bit for bit), **localized** (protocol handlers see one hop of
//! state and nothing else), and **total** on well-formed inputs (no panics
//! in round handlers, no NaN-order traps in float sorts). Those properties
//! are easy to regress silently — a `HashMap` iteration here, a
//! convenience `model.positions()` call there — so this crate enforces
//! them mechanically over `crates/{core,wsn,geom,mds,netgen,par,obs,serve}`:
//!
//! * [`passes::Pass::Determinism`] — denies `HashMap`/`HashSet`,
//!   `thread_rng`, `SystemTime::now`, `Instant::now`.
//! * [`passes::Pass::Locality`] — inside `impl Protocol for ..` blocks,
//!   denies global-state accessors (`positions`, `true_distance`,
//!   whole-`Topology` queries beyond `neighbors`/`degree`/...).
//! * [`passes::Pass::PanicSafety`] — inside protocol impls, denies
//!   `unwrap`/`expect`/`panic!`-family macros and direct indexing.
//! * [`passes::Pass::FloatSafety`] — denies `partial_cmp(..).unwrap()`
//!   sorts (NaN-unsafe; use `f64::total_cmp`) and `==`/`!=` against float
//!   literals outside `geom::predicates`.
//! * [`passes::Pass::FaultScope`] — keeps the fault-injection layer
//!   (`FaultPlan`, `run_with_faults`, the fault PRNGs) out of `Protocol`
//!   impls entirely, and out of every non-test file except `crates/wsn`
//!   and the runner module `crates/core/src/protocols.rs`: protocols stay
//!   fault-oblivious, mirroring the paper's locality contract.
//! * [`passes::Pass::ChurnScope`] — keeps topology-change machinery
//!   (`DynamicTopology`, `ChurnPlan`, `TopologyEvent`, ...) out of
//!   `Protocol` impls and confined to the simulator, the incremental
//!   detector and the churn driver.
//! * [`passes::Pass::ParScope`] — keeps raw threading machinery
//!   (`std::thread`, atomics, locks, channels) inside `crates/par`;
//!   algorithm crates reach parallelism only through the deterministic
//!   `ballfit-par` API, and protocol impls not even that — a simulated
//!   node is a single-threaded message handler.
//! * [`passes::Pass::ObsScope`] — keeps the trace-emission API (`Trace`,
//!   `TraceEvent`, ...) out of `Protocol` impls: only the simulator, the
//!   detectors and the runner layer emit observations, so per-protocol
//!   cost accounting cannot be skewed from inside a message handler.
//! * [`passes::Pass::RecoveryScope`] — keeps the checkpoint/restore API
//!   (`TopologySnapshot`, `DetectorCheckpoint`, `checkpoint`, `restore`,
//!   `snapshot`) out of `Protocol` impls: crash recovery restores the
//!   *simulation* and replays; a handler snapshotting its own state
//!   would break replay byte-identity.
//! * [`passes::Pass::ServeScope`] — keeps the multi-tenant service API
//!   (`Service`, `ServeRequest`, `serve_log`, ...) out of `Protocol`
//!   impls and confined to `crates/serve` in non-test code: the daemon
//!   orchestrates the detectors from above, and algorithm crates must
//!   not grow a dependency on the wire layer.
//! * [`passes::Pass::BackendScope`] — keeps the pluggable-backend API
//!   (`BoundaryBackend`, `BackendDetection`, the rival detectors) out
//!   of `Protocol` impls and confined to `crates/backends` plus its two
//!   consumers (`crates/serve`, `crates/cli`) in non-test code:
//!   backends adapt whole detection pipelines from above, so the
//!   pipeline must compile without knowing the trait exists.
//!
//! Four **interprocedural** passes extend these one-call-deep checks to
//! whole call chains, using an item-level AST ([`ast`]) and a workspace
//! call graph ([`callgraph`]):
//!
//! * [`passes::Pass::DeterminismTaint`] — protocol fns and detector
//!   entry points must not *transitively* reach nondeterminism sources.
//! * [`passes::Pass::PanicReachability`] — protocol handlers must not
//!   transitively reach `unwrap`/`expect`/`panic!`/indexing outside
//!   annotated invariant sites.
//! * [`passes::Pass::TransitiveLocality`] — protocol handlers must not
//!   reach global-state accessors through helpers.
//! * [`passes::Pass::StaleAllow`] — every `allow(...)` directive must
//!   suppress at least one finding; dead directives are errors.
//!
//! Findings can be locally waived with a justification comment on the
//! same or preceding line: `// ballfit-lint: allow(float-safety)`. For
//! the transitive passes the directive goes at the *source* site (the
//! panic/nondeterminism token), marking an audited invariant.
//!
//! Run it with `cargo run -p ballfit-lint` from anywhere in the
//! workspace; it exits nonzero when violations exist. `--json PATH`
//! additionally emits a stable machine-readable report ([`report`]),
//! and `--diff BASELINE` gates on drift against a committed report
//! (`results/lint_baseline.json`). The `tests/lint_clean.rs`
//! integration test pins the workspace to zero findings, and
//! `scripts/check.sh` runs analyzer, report validation and drift gate
//! as part of the tier-1 gate.
//!
//! The crate is dependency-free by design (no `syn`): builds must work in
//! offline/vendorless environments, and token-level matching plus brace
//! scoping (see [`lexer`]) is sufficient for every pass above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod passes;
pub mod report;

pub use passes::{analyze_files, analyze_source, Analysis, Diagnostic, LintConfig, Pass};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `target/` never nests under a crate's src/tests, but guard
            // anyway so ad-hoc invocations on odd roots stay fast.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every `.rs` file of the configured crates under
/// `workspace_root` with all fifteen passes (token-level +
/// interprocedural). Returned diagnostics are sorted by file, line,
/// pass, message; file labels are workspace-relative.
pub fn analyze_workspace(workspace_root: &Path, cfg: &LintConfig) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for krate in &cfg.crates {
        let dir = workspace_root.join("crates").join(krate);
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    // A wrong --root would otherwise scan nothing and report "clean",
    // silently passing the CI gate.
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files under {} for crates {:?}", workspace_root.display(), cfg.crates),
        ));
    }
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = fs::read_to_string(&path)?;
        let label =
            path.strip_prefix(workspace_root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        sources.push((label, src));
    }
    Ok(analyze_files(&sources, cfg))
}

/// The workspace root baked in at compile time (`crates/lint/../..`),
/// letting `cargo run -p ballfit-lint` work from any CWD.
pub fn default_workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}
