//! Machine-readable lint reports and baseline drift detection.
//!
//! The report is JSON with a **fixed key order** and no timestamps, so
//! two runs over identical sources produce byte-identical output — the
//! same discipline the trace subsystem uses (`trace_diff`), applied to
//! lint findings. Every diagnostic carries a **fingerprint**: an FNV-1a
//! hash over `(pass, file, message, occurrence-index)` — deliberately
//! *excluding* the line number, so unrelated edits that shift a finding
//! up or down do not read as lint drift. `diff` compares the fingerprint
//! multiset of a run against a committed baseline and reports exactly
//! what appeared and what vanished.
//!
//! The parser half is a minimal recursive-descent JSON reader (objects,
//! arrays, strings with escapes, numbers, literals) — enough to load a
//! baseline without adding a dependency; full RFC 8259 validation of
//! emitted reports is done by the `bench::json` validator in
//! `scripts/check.sh`.

use crate::passes::{Analysis, Diagnostic, Pass};
use std::collections::BTreeMap;

/// One report entry: a diagnostic plus its stable fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 16-hex-digit FNV-1a fingerprint.
    pub fingerprint: String,
    /// Pass name.
    pub pass: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (excluded from the fingerprint).
    pub line: u32,
    /// Diagnostic message.
    pub message: String,
}

impl Entry {
    fn human(&self) -> String {
        format!(
            "[{}] {}:{} {} ({})",
            self.pass, self.file, self.line, self.message, self.fingerprint
        )
    }
}

/// Computes fingerprinted entries for a diagnostic list. Diagnostics
/// must already be sorted (as [`crate::passes::analyze_files`] returns
/// them); the occurrence index disambiguates repeated identical
/// findings in one file.
pub fn entries(diags: &[Diagnostic]) -> Vec<Entry> {
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    diags
        .iter()
        .map(|d| {
            let key = (d.pass.name().to_string(), d.file.clone(), d.message.clone());
            let occurrence = seen.entry(key).or_insert(0);
            let fp = fingerprint(d.pass.name(), &d.file, &d.message, *occurrence);
            *occurrence += 1;
            Entry {
                fingerprint: fp,
                pass: d.pass.name().to_string(),
                file: d.file.clone(),
                line: d.line,
                message: d.message.clone(),
            }
        })
        .collect()
}

/// FNV-1a 64 over the identity fields, `\x1f`-separated.
fn fingerprint(pass: &str, file: &str, message: &str, occurrence: u32) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(pass.as_bytes());
    eat(&[0x1f]);
    eat(file.as_bytes());
    eat(&[0x1f]);
    eat(message.as_bytes());
    eat(&[0x1f]);
    eat(occurrence.to_string().as_bytes());
    format!("{h:016x}")
}

/// Renders the full report. Key order is fixed; diagnostics are one per
/// line so drift reviews read as line diffs.
pub fn render(analysis: &Analysis) -> String {
    let entries = entries(&analysis.diagnostics);
    let mut out = String::new();
    out.push_str(
        "{\n  \"meta\": {\n    \"tool\": \"ballfit-lint\",\n    \"schema\": 1,\n    \"passes\": [",
    );
    for (i, p) in Pass::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(p.name()));
    }
    out.push_str("],\n");
    out.push_str(&format!("    \"files\": {},\n", analysis.files));
    out.push_str(&format!("    \"functions\": {}\n", analysis.functions));
    out.push_str("  },\n  \"diagnostics\": [");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"fingerprint\": {}, \"pass\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(&e.fingerprint),
            json_string(&e.pass),
            json_string(&e.file),
            e.line,
            json_string(&e.message)
        ));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {\n");
    out.push_str(&format!("    \"total\": {},\n", entries.len()));
    out.push_str("    \"by_pass\": {");
    for (i, p) in Pass::ALL.iter().enumerate() {
        let n = entries.iter().filter(|e| e.pass == p.name()).count();
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_string(p.name()), n));
    }
    out.push_str("}\n  }\n}\n");
    out
}

/// JSON string escaping per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Baseline drift: fingerprints present now but not in the baseline
/// (`added`) and fingerprints the baseline has that vanished
/// (`removed`). Either direction is drift — a *fixed* finding must be
/// removed from the baseline deliberately, not silently.
#[derive(Debug, Default)]
pub struct Drift {
    /// New findings (not in the baseline).
    pub added: Vec<String>,
    /// Baseline findings that no longer occur.
    pub removed: Vec<String>,
}

impl Drift {
    /// No drift in either direction.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Compares current entries against a baseline report's JSON text.
pub fn diff(current: &[Entry], baseline_json: &str) -> Result<Drift, String> {
    let baseline = parse_entries(baseline_json)?;
    fn count(es: &[Entry]) -> BTreeMap<&str, (u32, String)> {
        let mut m: BTreeMap<&str, (u32, String)> = BTreeMap::new();
        for e in es {
            let slot = m.entry(e.fingerprint.as_str()).or_insert((0, e.human()));
            slot.0 += 1;
        }
        m
    }
    let cur = count(current);
    let base = count(&baseline);
    let mut drift = Drift::default();
    for (fp, (n, human)) in &cur {
        let b = base.get(fp).map_or(0, |(n, _)| *n);
        for _ in b..*n {
            drift.added.push(human.clone());
        }
    }
    for (fp, (n, human)) in &base {
        let c = cur.get(fp).map_or(0, |(n, _)| *n);
        for _ in c..*n {
            drift.removed.push(human.clone());
        }
    }
    Ok(drift)
}

/// Extracts the `diagnostics` array from a report produced by
/// [`render`] (or hand-edited, as long as it stays valid JSON).
pub fn parse_entries(json: &str) -> Result<Vec<Entry>, String> {
    let value = JsonParser { b: json.as_bytes(), i: 0 }.parse()?;
    let Json::Object(top) = value else {
        return Err("baseline: top level is not an object".to_string());
    };
    let Some(Json::Array(diags)) = top.iter().find(|(k, _)| k == "diagnostics").map(|(_, v)| v)
    else {
        return Err("baseline: missing `diagnostics` array".to_string());
    };
    let mut out = Vec::new();
    for d in diags {
        let Json::Object(fields) = d else {
            return Err("baseline: diagnostic is not an object".to_string());
        };
        let get_str = |name: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(format!("baseline: diagnostic missing string `{name}`")),
            }
        };
        let line = match fields.iter().find(|(k, _)| k == "line").map(|(_, v)| v) {
            Some(Json::Number(n)) => *n as u32,
            _ => 0,
        };
        out.push(Entry {
            fingerprint: get_str("fingerprint")?,
            pass: get_str("pass")?,
            file: get_str("file")?,
            line,
            message: get_str("message")?,
        });
    }
    Ok(out)
}

/// Minimal JSON value for baseline loading.
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    // Baseline loading only reads strings out of the `diagnostics`
    // array; bool/null payloads are validated, not consumed.
    Bool,
    Null,
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(format!("baseline: trailing bytes at offset {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("baseline: expected `{}` at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("baseline: bad object at offset {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("baseline: bad array at offset {}", self.i)),
                    }
                }
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.i;
                self.i += 1;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Json::Number)
                    .ok_or_else(|| format!("baseline: bad number at offset {start}"))
            }
            _ => Err(format!("baseline: unexpected byte at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("baseline: bad literal at offset {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.ws();
        if self.b.get(self.i) != Some(&b'"') {
            return Err(format!("baseline: expected string at offset {}", self.i));
        }
        self.i += 1;
        let mut out = Vec::new();
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "baseline: invalid UTF-8 in string".to_string());
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("baseline: bad \\u escape at offset {}", self.i)
                                })?;
                            // Surrogate pairs don't occur in our reports;
                            // map lone surrogates to U+FFFD.
                            let ch = char::from_u32(hex).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            self.i += 4;
                        }
                        _ => return Err(format!("baseline: bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                _ => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
        Err("baseline: unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::Diagnostic;

    fn diag(pass: Pass, file: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic { pass, file: file.to_string(), line, message: msg.to_string() }
    }

    fn analysis(diags: Vec<Diagnostic>) -> Analysis {
        Analysis { diagnostics: diags, files: 3, functions: 17 }
    }

    #[test]
    fn fingerprints_ignore_lines_but_count_occurrences() {
        let a = entries(&[diag(Pass::Determinism, "f.rs", 10, "m")]);
        let b = entries(&[diag(Pass::Determinism, "f.rs", 99, "m")]);
        assert_eq!(a[0].fingerprint, b[0].fingerprint);
        let two = entries(&[
            diag(Pass::Determinism, "f.rs", 10, "m"),
            diag(Pass::Determinism, "f.rs", 11, "m"),
        ]);
        assert_ne!(two[0].fingerprint, two[1].fingerprint, "occurrence index disambiguates");
    }

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let an = analysis(vec![
            diag(Pass::FloatSafety, "crates/a.rs", 4, "msg \"quoted\" and \\ back"),
            diag(Pass::StaleAllow, "crates/b.rs", 9, "stale"),
        ]);
        let r1 = render(&an);
        let r2 = render(&an);
        assert_eq!(r1, r2);
        let parsed = parse_entries(&r1).expect("round-trips");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].message, "msg \"quoted\" and \\ back");
        assert_eq!(parsed[1].pass, "stale-allow");
        assert_eq!(parsed[1].line, 9);
    }

    #[test]
    fn diff_reports_drift_in_both_directions() {
        let base = render(&analysis(vec![diag(Pass::Determinism, "f.rs", 1, "old")]));
        let cur = entries(&[diag(Pass::Determinism, "f.rs", 1, "new")]);
        let drift = diff(&cur, &base).expect("baseline parses");
        assert_eq!(drift.added.len(), 1);
        assert_eq!(drift.removed.len(), 1);
        assert!(!drift.is_empty());
        // Identical sets (even at different lines) are no drift.
        let same = entries(&[diag(Pass::Determinism, "f.rs", 77, "old")]);
        assert!(diff(&same, &base).expect("parses").is_empty());
    }

    #[test]
    fn empty_report_has_fixed_shape() {
        let r = render(&analysis(Vec::new()));
        assert!(r.contains("\"diagnostics\": []"));
        assert!(r.contains("\"total\": 0"));
        assert!(r.contains("\"determinism-taint\": 0"));
        assert!(parse_entries(&r).expect("parses").is_empty());
    }
}
