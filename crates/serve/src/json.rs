//! A small JSON value layer for the wire protocol.
//!
//! `bench::json` only *validates* RFC 8259 well-formedness; the serve
//! layer also has to read request fields, so this module adds a
//! recursive-descent parser producing a [`JsonValue`] tree, plus the
//! canonical string/float writers the response encoder uses. Design
//! points, all in service of the determinism contract:
//!
//! * Numbers keep their **raw token** ([`JsonValue::Num`]). Integer
//!   fields parse losslessly via `str::parse::<u64>` (no float
//!   round-trip, no float comparisons); float fields go through
//!   `str::parse::<f64>`, whose result is a pure function of the token.
//! * Writing floats uses Rust's shortest-round-trip `Display`, so
//!   `write → parse → write` is a fixed point and response logs are
//!   byte-stable across runs and platforms.
//! * Object keys keep insertion order; the *encoder* (not serde, not a
//!   map) decides key order, so responses have a fixed key layout.
//! * Parsing never panics: malformed input, oversized nesting, bad
//!   escapes, and trailing garbage all return [`JsonError`].

use std::fmt;

/// Maximum nesting depth the parser accepts. Deeper input is rejected
/// (never a stack overflow) — wire messages are a few levels deep.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Numbers carry their source token verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (e.g. `"-1.5e3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if this is a number whose raw
    /// token is one (`"3"` yes, `"3.0"` and `"-3"` no) — exact by
    /// construction, no float detour.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The number as a finite `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse::<f64>().ok().filter(|v| v.is_finite()),
            _ => None,
        }
    }
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable cause.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

/// Parses one complete JSON value from `text`; trailing non-whitespace
/// is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError { at: pos, reason: "trailing characters" });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError { at: *pos, reason: "nesting too deep" });
    }
    match bytes.get(*pos) {
        None => Err(JsonError { at: *pos, reason: "unexpected end of input" }),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError { at: *pos, reason: "unexpected character" }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError { at: *pos, reason: "invalid literal" })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError { at: *pos, reason: "expected object key" });
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError { at: *pos, reason: "expected ':'" });
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(JsonError { at: *pos, reason: "expected ',' or '}'" }),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(JsonError { at: *pos, reason: "expected ',' or ']'" }),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { at: *pos, reason: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX for the low half.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(JsonError { at: *pos, reason: "lone surrogate" });
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(JsonError { at: *pos, reason: "invalid surrogate" });
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                                .ok_or(JsonError { at: *pos, reason: "invalid codepoint" })?
                        } else {
                            char::from_u32(hi)
                                .ok_or(JsonError { at: *pos, reason: "invalid codepoint" })?
                        };
                        out.push(c);
                        continue; // parse_hex4 already advanced past the digits
                    }
                    _ => return Err(JsonError { at: *pos, reason: "invalid escape" }),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError { at: *pos, reason: "control character in string" })
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| JsonError { at: start, reason: "invalid utf-8" })?,
                );
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let Some(hex) = bytes.get(*pos..*pos + 4) else {
        return Err(JsonError { at: *pos, reason: "truncated \\u escape" });
    };
    let s = std::str::from_utf8(hex).map_err(|_| JsonError { at: *pos, reason: "bad hex" })?;
    let v = u32::from_str_radix(s, 16).map_err(|_| JsonError { at: *pos, reason: "bad hex" })?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit run.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(JsonError { at: *pos, reason: "invalid number" }),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError { at: *pos, reason: "invalid number" });
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError { at: *pos, reason: "invalid number" });
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError { at: start, reason: "invalid utf-8" })?;
    Ok(JsonValue::Num(raw.to_string()))
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in Rust's shortest-round-trip form — a pure
/// function of the bits, so encodings are byte-stable. Callers validate
/// finiteness at the wire boundary; a non-finite value here is a bug.
pub fn push_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "wire floats are validated finite");
    out.push_str(&format!("{v}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values_and_keeps_raw_number_tokens() {
        let v = parse(r#"{"op":"create","n":42,"x":-1.5e3,"ok":true,"xs":[1,2,null]}"#).unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("create"));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("x"), Some(&JsonValue::Num("-1.5e3".to_string())));
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(-1500.0));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(JsonValue::as_arr).map(<[_]>::len), Some(3));
    }

    #[test]
    fn integer_accessor_rejects_floats_and_negatives() {
        let v = parse(r#"{"a":3,"b":3.0,"c":-3}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("c").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("c").and_then(JsonValue::as_f64), Some(-3.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "over-deep nesting must fail");
    }

    #[test]
    fn float_writer_is_shortest_round_trip() {
        for v in [0.0, 1.0, -2.5, 0.1, 1e300, 123456.789] {
            let mut out = String::new();
            push_f64(&mut out, v);
            let back: f64 = out.parse().unwrap();
            assert!((back - v).abs() < f64::MIN_POSITIVE, "{v} -> {out}");
        }
        let mut out = String::new();
        push_f64(&mut out, 1.0);
        assert_eq!(out, "1");
    }
}
