//! The multi-tenant service: many [`Instance`]s keyed by id, driven by
//! [`ServeRequest`]s, sharded across the `ballfit-par` pool.
//!
//! # Determinism contract
//!
//! The response log is a pure function of the request log. Three design
//! rules make that hold at every worker-thread count:
//!
//! 1. **Per-instance state is confined.** Each instance owns its
//!    topology, detector, and trace; no request touches two instances.
//! 2. **Per-instance order is program order.** [`Service::serve_log`]
//!    groups requests by instance id and moves each instance (with its
//!    request indices) into one [`ballfit_par::par_map_owned`] job, so
//!    an instance's requests always run sequentially in log order —
//!    only *different* instances run concurrently.
//! 3. **All instance work is sequential.** Detectors run under
//!    [`Parallelism::sequential`]; the service's thread budget is spent
//!    across instances, never inside one.
//!
//! Responses are spliced back at their request's log position, so the
//! output bytes are independent of job completion order. Everything is
//! logical time — no wall clock enters any response.

use std::collections::BTreeMap;

use ballfit::chaos::{epoch_plan, run_epoch, ChaosConfig, DetectionOutcome};
use ballfit::incremental::{DetectorCheckpoint, IncrementalDetector};
use ballfit::surface::SurfaceBuilder;
use ballfit::view::NetView;
use ballfit_geom::Vec3;
use ballfit_netgen::builder::NetworkBuilder;
use ballfit_netgen::scenario::Scenario;
use ballfit_obs::summary::summarize;
use ballfit_obs::Trace;
use ballfit_par::Parallelism;
use ballfit_wsn::churn::{ChurnPlan, DynamicTopology, TopologyEvent, TopologySnapshot};

use crate::wire::{
    CreateSource, FaultKnobs, MeshRow, QueryKind, ServeError, ServeRequest, ServeResponse,
    StatsRow, WireBackend, WireCheckpoint, WireConfig, WireDetector, WireEvent, WireSnapshot,
};

/// Boundary/group view computed by a non-reference backend. The UBF
/// pipeline stays incrementally maintained (it drives fragments, mesh
/// bootstrap, and inject epochs); a rival backend is recomputed from
/// scratch after create/events/restore and *overlays* the boundary and
/// group queries. Dead slots are isolated nodes a degree-based rival
/// rightly flags degenerate, so the overlay masks them out and regroups
/// over live flags only.
#[derive(Debug)]
struct BackendOverlay {
    /// Per-slot boundary flags, dead slots forced to `false`.
    boundary: Vec<bool>,
    /// Boundary groups over the masked flags, canonical order.
    groups: Vec<Vec<usize>>,
}

/// One tenant: a dynamic topology, its incrementally-maintained
/// detector, a structured trace, and the epoch counters that keep
/// replayed fault streams aligned across checkpoint/restore.
#[derive(Debug)]
pub struct Instance {
    /// The wire config the instance was created with (echoed by
    /// `checkpoint` so a restore rebuilds the identical detector config
    /// *and* backend).
    config: WireConfig,
    dynamic: DynamicTopology,
    detector: IncrementalDetector,
    /// `Some` iff `config.backend` is not the reference pipeline.
    overlay: Option<BackendOverlay>,
    trace: Trace,
    /// Events batches applied so far (the next batch's epoch index).
    epoch: u64,
    /// Inject epochs run so far (the next inject's fault-stream index).
    injects: u64,
}

impl Instance {
    fn from_dynamic(config: WireConfig, dynamic: DynamicTopology) -> Instance {
        // Sequential on purpose: see the module docs' determinism
        // contract — the service parallelizes across instances only.
        let detector = IncrementalDetector::new_with_parallelism(
            config.to_detector(),
            &dynamic,
            Parallelism::sequential(),
        );
        let mut inst = Instance {
            config,
            dynamic,
            detector,
            overlay: None,
            trace: Trace::enabled(),
            epoch: 0,
            injects: 0,
        };
        inst.refresh_overlay();
        inst
    }

    /// Recomputes the rival-backend overlay (no-op for the reference
    /// backend). The backend's exchanges record into the instance trace,
    /// so `query what=stats` carries rival costs next to UBF costs.
    fn refresh_overlay(&mut self) {
        if self.config.backend == WireBackend::Ubf {
            self.overlay = None;
            return;
        }
        let view = NetView::new(
            self.dynamic.topology(),
            self.dynamic.positions(),
            self.dynamic.radio_range(),
        );
        let backend = ballfit_backends::configured(
            self.config.backend.as_str(),
            self.config.to_detector(),
            self.config.noise_seed,
            Parallelism::sequential(),
        )
        .expect("wire backend names mirror the registry");
        let result = backend.detect(&view, &mut self.trace);
        let mut boundary = result.detection.boundary;
        for (i, flag) in boundary.iter_mut().enumerate() {
            if !self.dynamic.is_live(i) {
                *flag = false;
            }
        }
        let groups = ballfit::grouping::group_boundaries(self.dynamic.topology(), &boundary);
        self.overlay = Some(BackendOverlay { boundary, groups });
    }

    /// Per-slot boundary flags of the configured backend.
    fn boundary_flags(&self) -> &[bool] {
        match &self.overlay {
            Some(o) => &o.boundary,
            None => self.detector.boundary(),
        }
    }

    /// Boundary groups of the configured backend, canonical order.
    fn groups(&self) -> &[Vec<usize>] {
        match &self.overlay {
            Some(o) => &o.groups,
            None => self.detector.groups(),
        }
    }

    /// Live boundary node ids, ascending.
    fn live_boundary(&self) -> Vec<usize> {
        let flags = self.boundary_flags();
        (0..self.dynamic.len()).filter(|&i| flags[i] && self.dynamic.is_live(i)).collect()
    }

    fn created_response(&self, id: &str) -> ServeResponse {
        ServeResponse::Created {
            id: id.to_string(),
            nodes: self.dynamic.len(),
            live: self.dynamic.live_count(),
            boundary: self.live_boundary().len(),
            groups: self.groups().len(),
            balls: self.detector.detection().balls_tested,
        }
    }
}

fn vec3_of(p: [f64; 3]) -> Vec3 {
    Vec3::new(p[0], p[1], p[2])
}

fn arr_of(p: Vec3) -> [f64; 3] {
    [p.x, p.y, p.z]
}

fn create_instance(
    id: &str,
    source: &CreateSource,
    config: WireConfig,
) -> Result<Instance, ServeError> {
    let dynamic = match source {
        CreateSource::Scene(scene) => {
            let scenario =
                Scenario::by_name(&scene.scenario).ok_or_else(|| ServeError::BadScene {
                    id: id.to_string(),
                    detail: format!("unknown scenario '{}'", scene.scenario),
                })?;
            let model = NetworkBuilder::new(scenario)
                .surface_nodes(scene.surface)
                .interior_nodes(scene.interior)
                .target_degree(scene.degree)
                .seed(scene.seed)
                .build()
                .map_err(|e| ServeError::BadScene { id: id.to_string(), detail: e.to_string() })?;
            DynamicTopology::new(model.positions(), model.radio_range())
        }
        CreateSource::Positions { positions, range } => {
            if positions.is_empty() {
                return Err(ServeError::BadScene {
                    id: id.to_string(),
                    detail: "at least one position is required".to_string(),
                });
            }
            let pos: Vec<Vec3> = positions.iter().copied().map(vec3_of).collect();
            DynamicTopology::new(&pos, *range)
        }
    };
    Ok(Instance::from_dynamic(config, dynamic))
}

/// Pre-validates an event batch against a simulated liveness vector so
/// a bad batch is rejected *whole* — [`DynamicTopology::apply`] panics
/// on a leave/move of a dead slot, and a half-applied batch would leave
/// the instance in a state the request log cannot explain.
fn validate_events(
    id: &str,
    dynamic: &DynamicTopology,
    events: &[WireEvent],
) -> Result<(), ServeError> {
    let mut alive: Vec<bool> = (0..dynamic.len()).map(|i| dynamic.is_live(i)).collect();
    for ev in events {
        match *ev {
            WireEvent::Join { .. } => alive.push(true),
            WireEvent::Leave { node } => {
                if !alive.get(node).copied().unwrap_or(false) {
                    return Err(ServeError::DeadNode { id: id.to_string(), node });
                }
                alive[node] = false;
            }
            WireEvent::Move { node, .. } => {
                if !alive.get(node).copied().unwrap_or(false) {
                    return Err(ServeError::DeadNode { id: id.to_string(), node });
                }
            }
        }
    }
    Ok(())
}

fn apply_events(inst: &mut Instance, id: &str, events: &[WireEvent]) -> ServeResponse {
    if let Err(e) = validate_events(id, &inst.dynamic, events) {
        return ServeResponse::Error(e);
    }
    let (mut promoted, mut demoted, mut regrouped, mut halo) = (0usize, 0usize, 0usize, 0usize);
    let mut balls = 0u64;
    for ev in events {
        let event = match *ev {
            WireEvent::Join { position } => TopologyEvent::Join { position: vec3_of(position) },
            WireEvent::Leave { node } => TopologyEvent::Leave { node },
            WireEvent::Move { node, to } => TopologyEvent::Move { node, to: vec3_of(to) },
        };
        let delta = inst.dynamic.apply(&event);
        // No extra span wrapper: the per-event `"churn-event"` spans a
        // direct IncrementalDetector driver would record are exactly
        // what this instance's trace records (the serve ≡ direct pin).
        let diff = inst.detector.apply_traced(&inst.dynamic, &delta, &mut inst.trace);
        promoted += diff.promoted.len();
        demoted += diff.demoted.len();
        regrouped += diff.regrouped.len();
        halo += diff.halo.len();
        balls += diff.balls;
    }
    let epoch = inst.epoch;
    inst.epoch += 1;
    // A rival backend has no incremental form: recompute its overlay
    // once per successful batch. The diff counters above still report
    // the incremental UBF repair (they describe maintenance cost, not
    // the overlay verdicts).
    inst.refresh_overlay();
    ServeResponse::Applied {
        id: id.to_string(),
        epoch,
        applied: events.len(),
        promoted,
        demoted,
        regrouped,
        halo,
        balls,
        boundary: inst.live_boundary().len(),
        groups: inst.groups().len(),
    }
}

fn query_instance(inst: &Instance, id: &str, what: QueryKind) -> ServeResponse {
    match what {
        QueryKind::Boundary => {
            ServeResponse::BoundaryNodes { id: id.to_string(), nodes: inst.live_boundary() }
        }
        QueryKind::Groups => {
            ServeResponse::GroupList { id: id.to_string(), groups: inst.groups().to_vec() }
        }
        QueryKind::Fragments => {
            let candidates = inst.detector.candidates();
            let fragments = inst.detector.fragments();
            ServeResponse::FragmentList {
                id: id.to_string(),
                fragments: (0..inst.dynamic.len())
                    .filter(|&i| candidates[i] && inst.dynamic.is_live(i))
                    .map(|i| (i, fragments[i]))
                    .collect(),
            }
        }
        QueryKind::Stats => {
            let summary = summarize(inst.trace.records());
            ServeResponse::StatsRows {
                id: id.to_string(),
                rows: summary
                    .rows
                    .into_iter()
                    .map(|r| StatsRow {
                        span: r.name,
                        nodes: r.nodes,
                        rounds: r.rounds,
                        messages: r.messages,
                        bytes: r.bytes,
                        delivered: r.delivered,
                        dropped: r.dropped,
                        duplicated: r.duplicated,
                        delayed: r.delayed,
                        crash_lost: r.crash_lost,
                        ball_tests: r.ball_tests,
                        tested_nodes: r.tested_nodes,
                        retransmits: r.retransmits,
                        reforwards: r.reforwards,
                        verdicts: r.verdicts,
                        degraded: r.degraded,
                        unreached: r.unreached,
                    })
                    .collect(),
            }
        }
        QueryKind::Mesh => {
            let view = NetView::new(
                inst.dynamic.topology(),
                inst.dynamic.positions(),
                inst.dynamic.radio_range(),
            );
            let builder = SurfaceBuilder::new(ballfit::config::SurfaceConfig::default());
            let mut meshes = Vec::new();
            for (gi, group) in inst.groups().iter().enumerate() {
                // Mesh the live members only: a dead slot is isolated and
                // would distort landmark election.
                let live: Vec<usize> =
                    group.iter().copied().filter(|&m| inst.dynamic.is_live(m)).collect();
                let Some(surface) = builder.build_group_view(&view, &live) else {
                    continue;
                };
                let s = &surface.stats;
                meshes.push(MeshRow {
                    group: gi,
                    size: s.group_size,
                    landmarks: s.landmarks,
                    faces: s.faces,
                    euler: s.euler,
                    manifold_ppm: (s.audit.manifold_fraction() * 1_000_000.0).round() as u64,
                });
            }
            ServeResponse::MeshList { id: id.to_string(), meshes }
        }
    }
}

fn checkpoint_instance(inst: &Instance, id: &str) -> ServeResponse {
    let snap = inst.dynamic.snapshot();
    let det = inst.detector.checkpoint();
    ServeResponse::CheckpointTaken {
        id: id.to_string(),
        checkpoint: WireCheckpoint {
            epoch: inst.epoch,
            injects: inst.injects,
            config: inst.config,
            snapshot: WireSnapshot {
                range: snap.range,
                positions: snap.positions.iter().copied().map(arr_of).collect(),
                alive: snap.alive,
            },
            detector: WireDetector {
                candidates: det.candidates,
                degenerate: det.degenerate,
                balls: det.balls,
                fragments: det.fragments,
                boundary: det.boundary,
                groups: det.groups,
            },
        },
    }
}

fn restore_instance(cp: &WireCheckpoint) -> Result<Instance, ServeError> {
    let n = cp.snapshot.positions.len();
    let bad = |detail: String| ServeError::BadRequest { detail };
    if cp.snapshot.alive.len() != n {
        return Err(bad(format!(
            "snapshot alive length {} != positions length {n}",
            cp.snapshot.alive.len()
        )));
    }
    let det = &cp.detector;
    for (what, len) in [
        ("candidates", det.candidates.len()),
        ("degenerate", det.degenerate.len()),
        ("balls", det.balls.len()),
        ("fragments", det.fragments.len()),
        ("boundary", det.boundary.len()),
    ] {
        if len != n {
            return Err(bad(format!("detector {what} length {len} != snapshot length {n}")));
        }
    }
    for group in &det.groups {
        for &m in group {
            if m >= n {
                return Err(bad(format!("group member {m} out of range for {n} slots")));
            }
        }
    }
    let snapshot = TopologySnapshot {
        positions: cp.snapshot.positions.iter().copied().map(vec3_of).collect(),
        alive: cp.snapshot.alive.clone(),
        range: cp.snapshot.range,
    };
    let dynamic = DynamicTopology::restore(&snapshot);
    let checkpoint = DetectorCheckpoint {
        config: cp.config.to_detector(),
        candidates: det.candidates.clone(),
        degenerate: det.degenerate.clone(),
        balls: det.balls.clone(),
        fragments: det.fragments.clone(),
        boundary: det.boundary.clone(),
        groups: det.groups.clone(),
    };
    let detector = IncrementalDetector::restore(&checkpoint, Parallelism::sequential());
    let mut inst = Instance {
        config: cp.config,
        dynamic,
        detector,
        overlay: None,
        // The trace restarts empty: stats are per-incarnation. The
        // replayed *protocol* work is still byte-identical, which is
        // what the crash-recovery pin checks.
        trace: Trace::enabled(),
        epoch: cp.epoch,
        injects: cp.injects,
    };
    // The checkpoint carries the backend name in its config; the
    // overlay itself is derived state and is recomputed, not persisted.
    inst.refresh_overlay();
    Ok(inst)
}

/// Inject always exercises the hardened UBF stack against the oracle,
/// whatever `config.backend` says: the chaos watchdog judges the
/// *reference* pipeline's fault tolerance, and a rival backend's
/// overlay is untouched by fault epochs (they leave the topology as
/// they found it).
fn inject_instance(inst: &mut Instance, id: &str, faults: &FaultKnobs) -> ServeResponse {
    let ccfg = ChaosConfig::new(inst.config.to_detector(), ChurnPlan::none())
        .with_loss(faults.loss)
        .with_duplication(faults.duplication)
        .with_max_delay(faults.max_delay)
        .with_crash_fraction(faults.crash_fraction)
        .with_crash_window(faults.crash_down, faults.crash_up)
        .with_fault_seed(faults.seed);
    let live = inst.dynamic.live_nodes();
    let plan = epoch_plan(&ccfg, inst.injects as usize, &live);
    let crashed = plan.crashes.len();
    let verdict = run_epoch(&inst.dynamic, &ccfg, &plan, &inst.detector, &mut inst.trace);
    let epoch = inst.injects;
    inst.injects += 1;
    let (unreached, cause) = match &verdict.outcome {
        DetectionOutcome::Exact { .. } => (0, "none".to_string()),
        DetectionOutcome::Degraded { unreached, cause, .. } => {
            (unreached.len(), cause.as_str().to_string())
        }
    };
    ServeResponse::Injected {
        id: id.to_string(),
        epoch,
        exact: verdict.outcome.is_exact(),
        cause,
        coverage_ppm: (verdict.outcome.coverage() * 1_000_000.0).round() as u64,
        unreached,
        boundary: verdict.outcome.boundary().len(),
        rounds: verdict.rounds,
        clean_rounds: verdict.clean_rounds,
        repairs: verdict.repairs,
        exhausted: verdict.exhausted,
        live: live.len(),
        crashed,
    }
}

/// Applies one request to one instance slot. `slot` is `None` when no
/// instance exists under the request's id; `create`/`restore` fill it,
/// everything else requires it. Pure with respect to the rest of the
/// service — the sharding in [`Service::serve_log`] relies on that.
fn apply_to_slot(slot: &mut Option<Instance>, req: &ServeRequest) -> ServeResponse {
    let id = req.id().unwrap_or_default().to_string();
    match req {
        ServeRequest::Create { source, config, .. } => {
            if slot.is_some() {
                return ServeResponse::Error(ServeError::DuplicateInstance { id });
            }
            match create_instance(&id, source, *config) {
                Ok(inst) => {
                    let resp = inst.created_response(&id);
                    *slot = Some(inst);
                    resp
                }
                Err(e) => ServeResponse::Error(e),
            }
        }
        ServeRequest::Restore { checkpoint, .. } => {
            if slot.is_some() {
                return ServeResponse::Error(ServeError::DuplicateInstance { id });
            }
            match restore_instance(checkpoint) {
                Ok(inst) => {
                    let resp = ServeResponse::Restored {
                        id,
                        nodes: inst.dynamic.len(),
                        live: inst.dynamic.live_count(),
                        boundary: inst.live_boundary().len(),
                        groups: inst.groups().len(),
                    };
                    *slot = Some(inst);
                    resp
                }
                Err(e) => ServeResponse::Error(e),
            }
        }
        ServeRequest::Events { events, .. } => match slot.as_mut() {
            Some(inst) => apply_events(inst, &id, events),
            None => ServeResponse::Error(ServeError::UnknownInstance { id }),
        },
        ServeRequest::Query { what, .. } => match slot.as_ref() {
            Some(inst) => query_instance(inst, &id, *what),
            None => ServeResponse::Error(ServeError::UnknownInstance { id }),
        },
        ServeRequest::Checkpoint { .. } => match slot.as_ref() {
            Some(inst) => checkpoint_instance(inst, &id),
            None => ServeResponse::Error(ServeError::UnknownInstance { id }),
        },
        ServeRequest::Inject { faults, .. } => match slot.as_mut() {
            Some(inst) => inject_instance(inst, &id, faults),
            None => ServeResponse::Error(ServeError::UnknownInstance { id }),
        },
        // Shutdown is service-level; `Service::handle` intercepts it.
        ServeRequest::Shutdown => ServeResponse::ShutdownOk,
    }
}

/// The daemon state: instances keyed by id, a thread budget for
/// cross-instance sharding, and the shutdown latch.
#[derive(Debug)]
pub struct Service {
    parallelism: Parallelism,
    instances: BTreeMap<String, Instance>,
    down: bool,
}

impl Service {
    /// A service sharding instance work over `parallelism` workers.
    /// The thread count never affects response bytes — only latency.
    pub fn new(parallelism: Parallelism) -> Self {
        Service { parallelism, instances: BTreeMap::new(), down: false }
    }

    /// A single-threaded service (the reference executor).
    pub fn sequential() -> Self {
        Service::new(Parallelism::sequential())
    }

    /// Ids of the live instances, ascending.
    pub fn instance_ids(&self) -> Vec<String> {
        self.instances.keys().cloned().collect()
    }

    /// `true` once a `shutdown` request has been processed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Handles one request in program order.
    pub fn handle(&mut self, req: &ServeRequest) -> ServeResponse {
        if self.down {
            return ServeResponse::Error(ServeError::AfterShutdown);
        }
        if matches!(req, ServeRequest::Shutdown) {
            self.down = true;
            return ServeResponse::ShutdownOk;
        }
        let id = req.id().expect("non-shutdown requests carry an id").to_string();
        let mut slot = self.instances.remove(&id);
        let resp = apply_to_slot(&mut slot, req);
        if let Some(inst) = slot {
            self.instances.insert(id, inst);
        }
        resp
    }

    /// Handles a whole request log, sharding instances across the
    /// worker pool. Byte-identical to folding [`Service::handle`] over
    /// the log — the per-instance request order is program order, and
    /// responses are spliced back at their request's position.
    pub fn serve_log(&mut self, reqs: &[ServeRequest]) -> Vec<ServeResponse> {
        let cut = if self.down {
            0
        } else {
            reqs.iter().position(|r| matches!(r, ServeRequest::Shutdown)).unwrap_or(reqs.len())
        };

        // Group the pre-shutdown prefix by instance id, preserving each
        // instance's request order.
        let mut by_id: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, req) in reqs.iter().take(cut).enumerate() {
            let id = req.id().expect("non-shutdown requests carry an id");
            by_id.entry(id.to_string()).or_default().push(i);
        }
        let jobs: Vec<(String, Option<Instance>, Vec<usize>)> = by_id
            .into_iter()
            .map(|(id, idxs)| {
                let inst = self.instances.remove(&id);
                (id, inst, idxs)
            })
            .collect();

        let done = ballfit_par::par_map_owned(self.parallelism, jobs, |(id, inst, idxs)| {
            let mut slot = inst;
            let outs: Vec<ServeResponse> =
                idxs.iter().map(|&i| apply_to_slot(&mut slot, &reqs[i])).collect();
            (id, slot, idxs, outs)
        });

        let mut responses: Vec<Option<ServeResponse>> = (0..reqs.len()).map(|_| None).collect();
        for (id, slot, idxs, outs) in done {
            if let Some(inst) = slot {
                self.instances.insert(id, inst);
            }
            for (i, out) in idxs.into_iter().zip(outs) {
                responses[i] = Some(out);
            }
        }
        for (i, slot) in responses.iter_mut().enumerate().skip(cut) {
            if i == cut && !self.down {
                self.down = true;
                *slot = Some(ServeResponse::ShutdownOk);
            } else {
                *slot = Some(ServeResponse::Error(ServeError::AfterShutdown));
            }
        }
        responses.into_iter().map(|r| r.expect("every request is answered")).collect()
    }

    /// Serves a JSONL transcript: one request per line, one response
    /// line per request line, in order. Blank lines are skipped; a line
    /// that fails to parse is answered in place with a typed error and
    /// never reaches an instance.
    pub fn serve_jsonl(&mut self, input: &str) -> String {
        let lines: Vec<&str> = input.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
        let mut parsed: Vec<Result<ServeRequest, ServeError>> = Vec::with_capacity(lines.len());
        for line in &lines {
            parsed.push(crate::wire::parse_request(line));
        }
        let ok_reqs: Vec<ServeRequest> =
            parsed.iter().filter_map(|r| r.as_ref().ok().cloned()).collect();
        let mut ok_responses = self.serve_log(&ok_reqs).into_iter();

        let mut out = String::new();
        for p in parsed {
            let resp = match p {
                Ok(_) => ok_responses.next().expect("one response per parsed request"),
                Err(e) => ServeResponse::Error(e),
            };
            out.push_str(&crate::wire::encode_response(&resp));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_positions() -> Vec<[f64; 3]> {
        // A 3×3×3 unit lattice: at range 1.8 (diagonal neighbors in
        // reach) the center node 13 is the only non-boundary node.
        let mut pos = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    pos.push([x as f64, y as f64, z as f64]);
                }
            }
        }
        pos
    }

    fn create_req(id: &str) -> ServeRequest {
        ServeRequest::Create {
            id: id.to_string(),
            source: CreateSource::Positions { positions: tiny_positions(), range: 1.8 },
            config: WireConfig::default(),
        }
    }

    #[test]
    fn create_query_shutdown_lifecycle() {
        let mut svc = Service::sequential();
        match svc.handle(&create_req("a")) {
            ServeResponse::Created { nodes, live, .. } => {
                assert_eq!(nodes, 27);
                assert_eq!(live, 27);
            }
            other => panic!("unexpected {other:?}"),
        }
        match svc.handle(&ServeRequest::Query { id: "a".to_string(), what: QueryKind::Boundary }) {
            ServeResponse::BoundaryNodes { nodes, .. } => {
                assert_eq!(nodes.len(), 26, "all lattice nodes but the center are boundary");
                assert!(!nodes.contains(&13));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(svc.handle(&ServeRequest::Shutdown), ServeResponse::ShutdownOk);
        assert_eq!(
            svc.handle(&ServeRequest::Checkpoint { id: "a".to_string() }),
            ServeResponse::Error(ServeError::AfterShutdown)
        );
    }

    #[test]
    fn typed_errors_for_bad_targets() {
        let mut svc = Service::sequential();
        assert_eq!(
            svc.handle(&ServeRequest::Query { id: "ghost".to_string(), what: QueryKind::Groups }),
            ServeResponse::Error(ServeError::UnknownInstance { id: "ghost".to_string() })
        );
        svc.handle(&create_req("a"));
        assert_eq!(
            svc.handle(&create_req("a")),
            ServeResponse::Error(ServeError::DuplicateInstance { id: "a".to_string() })
        );
        // A batch with one bad event is rejected whole.
        let before = match svc
            .handle(&ServeRequest::Query { id: "a".to_string(), what: QueryKind::Boundary })
        {
            ServeResponse::BoundaryNodes { nodes, .. } => nodes,
            other => panic!("unexpected {other:?}"),
        };
        let resp = svc.handle(&ServeRequest::Events {
            id: "a".to_string(),
            events: vec![
                WireEvent::Leave { node: 0 },
                WireEvent::Leave { node: 0 }, // dead by the time it applies
            ],
        });
        assert_eq!(
            resp,
            ServeResponse::Error(ServeError::DeadNode { id: "a".to_string(), node: 0 })
        );
        let after = match svc
            .handle(&ServeRequest::Query { id: "a".to_string(), what: QueryKind::Boundary })
        {
            ServeResponse::BoundaryNodes { nodes, .. } => nodes,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(before, after, "rejected batch must leave the instance untouched");
    }

    #[test]
    fn stat_backend_overlays_boundary_and_survives_checkpoint_restore() {
        let mut svc = Service::sequential();
        let create = ServeRequest::Create {
            id: "s".to_string(),
            source: CreateSource::Positions { positions: tiny_positions(), range: 1.8 },
            config: WireConfig { backend: WireBackend::Stat, ..WireConfig::default() },
        };
        let (boundary0, groups0) = match svc.handle(&create) {
            ServeResponse::Created { boundary, groups, .. } => (boundary, groups),
            other => panic!("unexpected {other:?}"),
        };
        let nodes = match svc
            .handle(&ServeRequest::Query { id: "s".to_string(), what: QueryKind::Boundary })
        {
            ServeResponse::BoundaryNodes { nodes, .. } => nodes,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(nodes.len(), boundary0);
        // Degree statistics on the lattice: sparse corners are boundary,
        // the fully-connected center is not.
        assert!(nodes.contains(&0), "corner 0 should look sparse to the stat backend");
        assert!(!nodes.contains(&13), "center 13 should look dense to the stat backend");
        // Groups come from the overlay and cover exactly the boundary.
        match svc.handle(&ServeRequest::Query { id: "s".to_string(), what: QueryKind::Groups }) {
            ServeResponse::GroupList { groups, .. } => {
                assert_eq!(groups.len(), groups0);
                let mut members: Vec<usize> = groups.into_iter().flatten().collect();
                members.sort_unstable();
                assert_eq!(members, nodes);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The backend rides the checkpoint; a restore reproduces the view.
        let cp = match svc.handle(&ServeRequest::Checkpoint { id: "s".to_string() }) {
            ServeResponse::CheckpointTaken { checkpoint, .. } => checkpoint,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(cp.config.backend, WireBackend::Stat);
        match svc.handle(&ServeRequest::Restore { id: "s2".to_string(), checkpoint: cp }) {
            ServeResponse::Restored { boundary, groups, .. } => {
                assert_eq!(boundary, boundary0);
                assert_eq!(groups, groups0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Events refresh the overlay: a dead slot can never stay boundary.
        svc.handle(&ServeRequest::Events {
            id: "s".to_string(),
            events: vec![WireEvent::Leave { node: 0 }],
        });
        match svc.handle(&ServeRequest::Query { id: "s".to_string(), what: QueryKind::Boundary }) {
            ServeResponse::BoundaryNodes { nodes, .. } => {
                assert!(!nodes.contains(&0), "left node must drop out of the overlay");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_log_matches_sequential_handle_at_every_thread_count() {
        let mut log = Vec::new();
        for id in ["a", "b", "c"] {
            log.push(create_req(id));
        }
        for id in ["a", "b", "c"] {
            log.push(ServeRequest::Events {
                id: id.to_string(),
                events: vec![
                    WireEvent::Leave { node: 13 },
                    WireEvent::Join { position: [1.0, 1.0, 3.0] },
                ],
            });
            log.push(ServeRequest::Query { id: id.to_string(), what: QueryKind::Boundary });
            log.push(ServeRequest::Query { id: id.to_string(), what: QueryKind::Stats });
        }
        log.push(ServeRequest::Shutdown);
        log.push(ServeRequest::Query { id: "a".to_string(), what: QueryKind::Groups });

        let mut reference = Service::sequential();
        let expected: Vec<ServeResponse> = log.iter().map(|r| reference.handle(r)).collect();
        for threads in [1, 2, 4, 8] {
            let mut svc = Service::new(Parallelism::threads(threads));
            assert_eq!(svc.serve_log(&log), expected, "threads={threads}");
        }
    }

    #[test]
    fn jsonl_answers_malformed_lines_in_place() {
        let mut svc = Service::sequential();
        let input = "\n{\"op\":\"query\",\"id\":\"a\",\"what\":\"boundary\"}\n{broken\n{\"op\":\"shutdown\"}\n";
        let out = svc.serve_jsonl(input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"err\":\"unknown-instance\""));
        assert!(lines[1].starts_with("{\"err\":\"bad-json\""));
        assert_eq!(lines[2], "{\"ok\":\"shutdown\"}");
    }
}
