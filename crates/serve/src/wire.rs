//! Wire types of the serve protocol: one JSON object per line, requests
//! in, responses out.
//!
//! The canonical encoding is produced by [`encode_request`] /
//! [`encode_response`] with a **fixed key order** per message kind, so a
//! response log is comparable byte for byte. Requests are parsed
//! permissively (key order free, unknown keys ignored, optional knobs
//! defaulted) but validated strictly: every malformed input maps to a
//! typed [`ServeError`] — the service never panics on wire data.
//!
//! The serde derives (feature `"serde"`, default on) are a convenience
//! surface for embedding wire messages in experiment result files and
//! for the workspace's serde round-trip suite; the JSONL protocol
//! itself always goes through the hand-rolled canonical encoder.

use std::fmt;

use crate::json::{self, JsonValue};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Which detection backend an instance runs: the wire spelling of the
/// `ballfit_backends` registry names (`ubf`, `stat`). An enum rather
/// than a free string so [`WireConfig`] stays `Copy` and an invalid
/// name can never reach an instance — the parser rejects it as a typed
/// bad-request. A wire test pins the variants against
/// [`ballfit_backends::NAMES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum WireBackend {
    /// The reference UBF → IFF → grouping pipeline (incrementally
    /// maintained under churn).
    #[default]
    Ubf,
    /// Fekete-style statistical degree-threshold detection
    /// (recomputed from scratch after every epoch).
    Stat,
}

impl WireBackend {
    /// Every wire backend, registry order.
    pub const ALL: [WireBackend; 2] = [WireBackend::Ubf, WireBackend::Stat];

    /// The registry name this variant denotes.
    pub fn as_str(self) -> &'static str {
        match self {
            WireBackend::Ubf => "ubf",
            WireBackend::Stat => "stat",
        }
    }

    /// Inverse of [`WireBackend::as_str`].
    pub fn by_name(name: &str) -> Option<WireBackend> {
        WireBackend::ALL.into_iter().find(|b| b.as_str() == name)
    }
}

/// Detector settings expressible on the wire, composed onto
/// [`ballfit::config::DetectorConfig`] by [`WireConfig::to_detector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WireConfig {
    /// Ranging-error percent for local-MDS coordinates; `None` selects
    /// ground-truth coordinates.
    pub error: Option<u32>,
    /// Seed of the per-pair measurement noise (with `error`).
    pub noise_seed: u64,
    /// IFF fragment threshold θ override.
    pub theta: Option<usize>,
    /// IFF flooding TTL override.
    pub ttl: Option<u32>,
    /// UBF witness-neighborhood radius override (hops).
    pub witness_hops: Option<u32>,
    /// Detection backend answering boundary/group queries.
    pub backend: WireBackend,
}

impl WireConfig {
    /// The [`ballfit::config::DetectorConfig`] this wire config denotes.
    pub fn to_detector(self) -> ballfit::config::DetectorConfig {
        let mut cfg = match self.error {
            Some(percent) => ballfit::config::DetectorConfig::paper(percent, self.noise_seed),
            None => ballfit::config::DetectorConfig::default(),
        };
        if let Some(theta) = self.theta {
            cfg.iff.theta = theta;
        }
        if let Some(ttl) = self.ttl {
            cfg.iff.ttl = ttl;
        }
        if let Some(hops) = self.witness_hops {
            cfg.ubf.witness_hops = hops;
        }
        cfg
    }
}

/// A netgen scene to sample an instance's network from.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WireScene {
    /// Scenario name, as `Scenario::name` spells it.
    pub scenario: String,
    /// Surface node count.
    pub surface: usize,
    /// Interior node count.
    pub interior: usize,
    /// Target average degree.
    pub degree: f64,
    /// Sampling seed.
    pub seed: u64,
}

/// Where a `create` request's network comes from.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum CreateSource {
    /// Sample a scenario via `ballfit_netgen::builder::NetworkBuilder`.
    Scene(WireScene),
    /// Explicit node positions plus a radio range.
    Positions {
        /// Node positions, one `[x, y, z]` triple per node.
        positions: Vec<[f64; 3]>,
        /// Radio range (must be finite and positive).
        range: f64,
    },
}

/// One topology event on the wire (the serve-side spelling of
/// [`ballfit_wsn::churn::TopologyEvent`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum WireEvent {
    /// A node joins at the given position (new highest slot).
    Join {
        /// Position of the new node.
        position: [f64; 3],
    },
    /// A live node leaves.
    Leave {
        /// Slot of the leaving node.
        node: usize,
    },
    /// A live node moves.
    Move {
        /// Slot of the moving node.
        node: usize,
        /// Its new position.
        to: [f64; 3],
    },
}

/// What a `query` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum QueryKind {
    /// Live boundary node ids, ascending.
    Boundary,
    /// Boundary groups, canonical order.
    Groups,
    /// Per-candidate IFF fragment sizes.
    Fragments,
    /// `obs::summary` rows over the instance's trace.
    Stats,
    /// Per-group landmark-mesh statistics.
    Mesh,
}

impl QueryKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Boundary => "boundary",
            QueryKind::Groups => "groups",
            QueryKind::Fragments => "fragments",
            QueryKind::Stats => "stats",
            QueryKind::Mesh => "mesh",
        }
    }

    /// Inverse of [`QueryKind::as_str`].
    pub fn by_name(name: &str) -> Option<QueryKind> {
        [
            QueryKind::Boundary,
            QueryKind::Groups,
            QueryKind::Fragments,
            QueryKind::Stats,
            QueryKind::Mesh,
        ]
        .into_iter()
        .find(|k| k.as_str() == name)
    }
}

/// Fault intensity of one `inject` epoch — the wire projection of the
/// [`ballfit::chaos::ChaosConfig`] radio knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultKnobs {
    /// Per-transmission loss probability.
    pub loss: f64,
    /// Per-transmission duplication probability.
    pub duplication: f64,
    /// Maximum extra delivery delay in rounds.
    pub max_delay: u32,
    /// Fraction of the live population crashed.
    pub crash_fraction: f64,
    /// Round the victims go down.
    pub crash_down: usize,
    /// Round the victims recover (`None` = permanent).
    pub crash_up: Option<usize>,
    /// Base fault seed (per-epoch streams derive from it).
    pub seed: u64,
}

impl Default for FaultKnobs {
    fn default() -> Self {
        // Mirrors `ChaosConfig::new`: perfect radio, crash window 1..6.
        FaultKnobs {
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            crash_fraction: 0.0,
            crash_down: 1,
            crash_up: Some(6),
            seed: 0,
        }
    }
}

/// A point-in-time image of a serve instance's topology (the wire
/// spelling of [`ballfit_wsn::churn::TopologySnapshot`]).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WireSnapshot {
    /// Radio range.
    pub range: f64,
    /// Per-slot positions (dead slots keep their last position).
    pub positions: Vec<[f64; 3]>,
    /// Per-slot liveness.
    pub alive: Vec<bool>,
}

/// A serve instance's detector state (the wire spelling of
/// [`ballfit::incremental::DetectorCheckpoint`], minus the config —
/// carried separately as a [`WireConfig`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WireDetector {
    /// Per-slot UBF candidate flags.
    pub candidates: Vec<bool>,
    /// Per-slot degenerate-neighborhood flags.
    pub degenerate: Vec<bool>,
    /// Per-slot candidate-ball counts.
    pub balls: Vec<u64>,
    /// Per-slot IFF fragment sizes.
    pub fragments: Vec<usize>,
    /// Per-slot boundary flags.
    pub boundary: Vec<bool>,
    /// Boundary groups, canonical order.
    pub groups: Vec<Vec<usize>>,
}

/// Everything a `checkpoint` response carries and a `restore` request
/// needs: config, topology, detector state, and the per-instance
/// epoch/inject counters that keep replayed fault streams aligned.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WireCheckpoint {
    /// Events-batches applied so far.
    pub epoch: u64,
    /// Inject epochs run so far.
    pub injects: u64,
    /// The instance's wire config.
    pub config: WireConfig,
    /// The topology snapshot.
    pub snapshot: WireSnapshot,
    /// The detector state.
    pub detector: WireDetector,
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ServeRequest {
    /// Create an instance from a scene or explicit positions.
    Create {
        /// Instance id.
        id: String,
        /// Network source.
        source: CreateSource,
        /// Detector settings.
        config: WireConfig,
    },
    /// Apply a batch of topology events as one epoch.
    Events {
        /// Instance id.
        id: String,
        /// The batch, applied in order.
        events: Vec<WireEvent>,
    },
    /// Read detection state.
    Query {
        /// Instance id.
        id: String,
        /// What to read.
        what: QueryKind,
    },
    /// Capture the instance's full state.
    Checkpoint {
        /// Instance id.
        id: String,
    },
    /// Revive an instance from a checkpoint under a (possibly new) id.
    Restore {
        /// Instance id to create.
        id: String,
        /// The checkpoint to revive.
        checkpoint: WireCheckpoint,
    },
    /// Run one fault epoch and judge it against the oracle.
    Inject {
        /// Instance id.
        id: String,
        /// Fault intensity.
        faults: FaultKnobs,
    },
    /// Stop serving: every later request is answered with an error.
    Shutdown,
}

impl ServeRequest {
    /// The target instance id, if the request addresses one.
    pub fn id(&self) -> Option<&str> {
        match self {
            ServeRequest::Create { id, .. }
            | ServeRequest::Events { id, .. }
            | ServeRequest::Query { id, .. }
            | ServeRequest::Checkpoint { id }
            | ServeRequest::Restore { id, .. }
            | ServeRequest::Inject { id, .. } => Some(id),
            ServeRequest::Shutdown => None,
        }
    }
}

/// Typed request failure. [`ServeError::code`] is the stable wire
/// spelling in the `"err"` key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ServeError {
    /// The line was not well-formed JSON.
    BadJson {
        /// Parser diagnostic.
        detail: String,
    },
    /// Well-formed JSON, but not a valid request of its op.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The `"op"` key named no known operation.
    UnknownOp {
        /// The offending op string.
        op: String,
    },
    /// `create`/`restore` targeted an id that already exists.
    DuplicateInstance {
        /// The offending id.
        id: String,
    },
    /// The request targeted an id with no instance.
    UnknownInstance {
        /// The offending id.
        id: String,
    },
    /// An event batch referenced a dead or out-of-range slot; the
    /// instance was left untouched.
    DeadNode {
        /// The instance.
        id: String,
        /// The offending slot.
        node: usize,
    },
    /// A scene could not be built (unknown scenario or sampling failure).
    BadScene {
        /// The instance.
        id: String,
        /// Builder diagnostic.
        detail: String,
    },
    /// The request arrived after `shutdown`.
    AfterShutdown,
}

impl ServeError {
    /// The stable wire code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadJson { .. } => "bad-json",
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::UnknownOp { .. } => "unknown-op",
            ServeError::DuplicateInstance { .. } => "duplicate-instance",
            ServeError::UnknownInstance { .. } => "unknown-instance",
            ServeError::DeadNode { .. } => "dead-node",
            ServeError::BadScene { .. } => "bad-scene",
            ServeError::AfterShutdown => "after-shutdown",
        }
    }

    /// The human-readable detail string encoded next to the code.
    pub fn detail(&self) -> String {
        match self {
            ServeError::BadJson { detail } => detail.clone(),
            ServeError::BadRequest { detail } => detail.clone(),
            ServeError::UnknownOp { op } => format!("unknown op '{op}'"),
            ServeError::DuplicateInstance { id } => format!("instance '{id}' already exists"),
            ServeError::UnknownInstance { id } => format!("no instance '{id}'"),
            ServeError::DeadNode { id, node } => {
                format!("instance '{id}': event references dead or out-of-range node {node}")
            }
            ServeError::BadScene { id, detail } => format!("instance '{id}': {detail}"),
            ServeError::AfterShutdown => "service is shut down".to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

/// One `obs::summary` row on the wire (integer counters only).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StatsRow {
    /// Span family name.
    pub span: String,
    /// Network size seen by the span.
    pub nodes: u64,
    /// Executed rounds.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Fault-layer drops.
    pub dropped: u64,
    /// Fault-layer duplications.
    pub duplicated: u64,
    /// Fault-layer delays.
    pub delayed: u64,
    /// Deliveries lost to crashed receivers.
    pub crash_lost: u64,
    /// Candidate balls tested.
    pub ball_tests: u64,
    /// Nodes that ran the UBF test.
    pub tested_nodes: u64,
    /// Hardened-protocol retransmissions.
    pub retransmits: u64,
    /// Hardened-flood re-forwards.
    pub reforwards: u64,
    /// Watchdog verdicts recorded.
    pub verdicts: u64,
    /// Verdicts that reported degradation.
    pub degraded: u64,
    /// Live nodes reported unreached across verdicts.
    pub unreached: u64,
}

/// Per-group mesh statistics on the wire (integers only; manifoldness
/// as parts per million).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MeshRow {
    /// Group index (canonical order).
    pub group: usize,
    /// Boundary nodes in the group.
    pub size: usize,
    /// Elected landmarks.
    pub landmarks: usize,
    /// Final triangle count.
    pub faces: usize,
    /// Euler characteristic.
    pub euler: i64,
    /// Manifold-edge fraction in parts per million.
    pub manifold_ppm: u64,
}

/// One response line. Every variant encodes with a fixed key order.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ServeResponse {
    /// `create` succeeded.
    Created {
        /// Instance id.
        id: String,
        /// Slot count.
        nodes: usize,
        /// Live nodes.
        live: usize,
        /// Boundary nodes.
        boundary: usize,
        /// Boundary groups.
        groups: usize,
        /// Cumulative unit balls tested (bootstrap detection).
        balls: u64,
    },
    /// `events` succeeded.
    Applied {
        /// Instance id.
        id: String,
        /// 0-based index of this events epoch.
        epoch: u64,
        /// Events applied.
        applied: usize,
        /// Nodes promoted to boundary.
        promoted: usize,
        /// Nodes demoted from boundary.
        demoted: usize,
        /// Nodes regrouped.
        regrouped: usize,
        /// Total dirty-halo size.
        halo: usize,
        /// Unit balls tested repairing this batch.
        balls: u64,
        /// Boundary nodes after the batch.
        boundary: usize,
        /// Boundary groups after the batch.
        groups: usize,
    },
    /// `query what=boundary`.
    BoundaryNodes {
        /// Instance id.
        id: String,
        /// Live boundary node ids, ascending.
        nodes: Vec<usize>,
    },
    /// `query what=groups`.
    GroupList {
        /// Instance id.
        id: String,
        /// Boundary groups, canonical order.
        groups: Vec<Vec<usize>>,
    },
    /// `query what=fragments`.
    FragmentList {
        /// Instance id.
        id: String,
        /// `[node, fragment_size]` per live candidate, ascending by node.
        fragments: Vec<(usize, usize)>,
    },
    /// `query what=stats`.
    StatsRows {
        /// Instance id.
        id: String,
        /// Summary rows, first-seen span order.
        rows: Vec<StatsRow>,
    },
    /// `query what=mesh`.
    MeshList {
        /// Instance id.
        id: String,
        /// One row per meshable group.
        meshes: Vec<MeshRow>,
    },
    /// `checkpoint` succeeded.
    CheckpointTaken {
        /// Instance id.
        id: String,
        /// The captured state.
        checkpoint: WireCheckpoint,
    },
    /// `restore` succeeded.
    Restored {
        /// Instance id.
        id: String,
        /// Slot count.
        nodes: usize,
        /// Live nodes.
        live: usize,
        /// Boundary nodes.
        boundary: usize,
        /// Boundary groups.
        groups: usize,
    },
    /// `inject` ran an epoch and the watchdog judged it.
    Injected {
        /// Instance id.
        id: String,
        /// 0-based inject epoch index.
        epoch: u64,
        /// Whether the epoch was judged exact.
        exact: bool,
        /// Degradation cause (`"none"` when exact).
        cause: String,
        /// Oracle-agreement coverage in parts per million.
        coverage_ppm: u64,
        /// Live nodes not brought into agreement.
        unreached: usize,
        /// Boundary size the distributed run established.
        boundary: usize,
        /// Rounds the faulty stack ran.
        rounds: usize,
        /// Rounds the fault-free baseline ran.
        clean_rounds: usize,
        /// Retry budget spent.
        repairs: u64,
        /// Budget-exhaustion incidents.
        exhausted: u64,
        /// Live population when the epoch ran.
        live: usize,
        /// Crash victims scheduled.
        crashed: usize,
    },
    /// `shutdown` acknowledged.
    ShutdownOk,
    /// The request failed.
    Error(ServeError),
}

// ---------------------------------------------------------------------------
// Request parsing.

type Parsed<T> = Result<T, ServeError>;

fn bad(detail: impl Into<String>) -> ServeError {
    ServeError::BadRequest { detail: detail.into() }
}

fn get_str(obj: &JsonValue, key: &str) -> Parsed<String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string '{key}'")))
}

fn get_u64_or(obj: &JsonValue, key: &str, default: u64) -> Parsed<u64> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn get_f64_or(obj: &JsonValue, key: &str, default: f64) -> Parsed<f64> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| bad(format!("'{key}' must be a finite number"))),
    }
}

fn get_unit_or(obj: &JsonValue, key: &str, default: f64) -> Parsed<f64> {
    let v = get_f64_or(obj, key, default)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(bad(format!("'{key}' must be within [0, 1]")));
    }
    Ok(v)
}

fn opt_u64(obj: &JsonValue, key: &str) -> Parsed<Option<u64>> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn parse_vec3(v: &JsonValue, what: &str) -> Parsed<[f64; 3]> {
    let arr = v.as_arr().ok_or_else(|| bad(format!("{what} must be an [x, y, z] array")))?;
    if arr.len() != 3 {
        return Err(bad(format!("{what} must have exactly 3 coordinates")));
    }
    let mut out = [0.0f64; 3];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item
            .as_f64()
            .ok_or_else(|| bad(format!("{what} coordinates must be finite numbers")))?;
    }
    Ok(out)
}

fn parse_bool_vec(obj: &JsonValue, key: &str) -> Parsed<Vec<bool>> {
    let arr = obj
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad(format!("missing or non-array '{key}'")))?;
    arr.iter()
        .map(|v| v.as_bool().ok_or_else(|| bad(format!("'{key}' must contain booleans"))))
        .collect()
}

fn parse_u64_vec(obj: &JsonValue, key: &str) -> Parsed<Vec<u64>> {
    let arr = obj
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad(format!("missing or non-array '{key}'")))?;
    arr.iter()
        .map(|v| v.as_u64().ok_or_else(|| bad(format!("'{key}' must contain integers"))))
        .collect()
}

fn parse_config(obj: &JsonValue) -> Parsed<WireConfig> {
    let Some(cfg) = obj.get("config") else {
        return Ok(WireConfig::default());
    };
    if cfg.as_obj().is_none() {
        return Err(bad("'config' must be an object"));
    }
    let backend = match cfg.get("backend") {
        None | Some(JsonValue::Null) => WireBackend::default(),
        Some(v) => {
            let name = v.as_str().ok_or_else(|| bad("'backend' must be a string"))?;
            WireBackend::by_name(name).ok_or_else(|| {
                bad(format!(
                    "unknown backend '{name}' (known: {})",
                    WireBackend::ALL.map(WireBackend::as_str).join(", ")
                ))
            })?
        }
    };
    Ok(WireConfig {
        error: opt_u64(cfg, "error")?.map(|v| v as u32),
        noise_seed: get_u64_or(cfg, "noise_seed", 0)?,
        theta: opt_u64(cfg, "theta")?.map(|v| v as usize),
        ttl: opt_u64(cfg, "ttl")?.map(|v| v as u32),
        witness_hops: opt_u64(cfg, "witness_hops")?.map(|v| v as u32),
        backend,
    })
}

fn parse_create(obj: &JsonValue) -> Parsed<ServeRequest> {
    let id = get_str(obj, "id")?;
    let config = parse_config(obj)?;
    let source = match (obj.get("scene"), obj.get("positions")) {
        (Some(scene), None) => {
            if scene.as_obj().is_none() {
                return Err(bad("'scene' must be an object"));
            }
            CreateSource::Scene(WireScene {
                scenario: get_str(scene, "scenario")?,
                surface: get_u64_or(scene, "surface", 150)? as usize,
                interior: get_u64_or(scene, "interior", 250)? as usize,
                degree: get_f64_or(scene, "degree", 13.0)?,
                seed: get_u64_or(scene, "seed", 0)?,
            })
        }
        (None, Some(pos)) => {
            let arr = pos.as_arr().ok_or_else(|| bad("'positions' must be an array"))?;
            let positions = arr
                .iter()
                .map(|p| parse_vec3(p, "each position"))
                .collect::<Parsed<Vec<[f64; 3]>>>()?;
            let range = get_f64_or(obj, "range", f64::NAN)?;
            if !(range > 0.0) {
                return Err(bad("'range' must be a positive finite number"));
            }
            CreateSource::Positions { positions, range }
        }
        _ => return Err(bad("create needs exactly one of 'scene' or 'positions'")),
    };
    Ok(ServeRequest::Create { id, source, config })
}

fn parse_events(obj: &JsonValue) -> Parsed<ServeRequest> {
    let id = get_str(obj, "id")?;
    let arr = obj
        .get("events")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad("missing or non-array 'events'"))?;
    let mut events = Vec::with_capacity(arr.len());
    for ev in arr {
        let kind = get_str(ev, "kind")?;
        events.push(match kind.as_str() {
            "join" => WireEvent::Join {
                position: parse_vec3(
                    ev.get("position").ok_or_else(|| bad("join needs 'position'"))?,
                    "'position'",
                )?,
            },
            "leave" => WireEvent::Leave {
                node: get_u64_or(ev, "node", u64::MAX)
                    .ok()
                    .filter(|&n| n != u64::MAX)
                    .ok_or_else(|| bad("leave needs an integer 'node'"))?
                    as usize,
            },
            "move" => WireEvent::Move {
                node: get_u64_or(ev, "node", u64::MAX)
                    .ok()
                    .filter(|&n| n != u64::MAX)
                    .ok_or_else(|| bad("move needs an integer 'node'"))?
                    as usize,
                to: parse_vec3(ev.get("to").ok_or_else(|| bad("move needs 'to'"))?, "'to'")?,
            },
            other => return Err(bad(format!("unknown event kind '{other}'"))),
        });
    }
    Ok(ServeRequest::Events { id, events })
}

fn parse_snapshot(obj: &JsonValue) -> Parsed<WireSnapshot> {
    let snap = obj.get("snapshot").ok_or_else(|| bad("restore needs 'snapshot'"))?;
    if snap.as_obj().is_none() {
        return Err(bad("'snapshot' must be an object"));
    }
    let range = get_f64_or(snap, "range", f64::NAN)?;
    if !(range > 0.0) {
        return Err(bad("snapshot 'range' must be a positive finite number"));
    }
    let positions = snap
        .get("positions")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad("snapshot needs a 'positions' array"))?
        .iter()
        .map(|p| parse_vec3(p, "each snapshot position"))
        .collect::<Parsed<Vec<[f64; 3]>>>()?;
    let alive = parse_bool_vec(snap, "alive")?;
    Ok(WireSnapshot { range, positions, alive })
}

fn parse_detector(obj: &JsonValue) -> Parsed<WireDetector> {
    let det = obj.get("detector").ok_or_else(|| bad("restore needs 'detector'"))?;
    if det.as_obj().is_none() {
        return Err(bad("'detector' must be an object"));
    }
    let groups = det
        .get("groups")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| bad("detector needs a 'groups' array"))?
        .iter()
        .map(|g| {
            g.as_arr()
                .ok_or_else(|| bad("each group must be an array"))?
                .iter()
                .map(|m| {
                    m.as_u64()
                        .map(|v| v as usize)
                        .ok_or_else(|| bad("group members must be integers"))
                })
                .collect::<Parsed<Vec<usize>>>()
        })
        .collect::<Parsed<Vec<Vec<usize>>>>()?;
    Ok(WireDetector {
        candidates: parse_bool_vec(det, "candidates")?,
        degenerate: parse_bool_vec(det, "degenerate")?,
        balls: parse_u64_vec(det, "balls")?,
        fragments: parse_u64_vec(det, "fragments")?.into_iter().map(|v| v as usize).collect(),
        boundary: parse_bool_vec(det, "boundary")?,
        groups,
    })
}

fn parse_restore(obj: &JsonValue) -> Parsed<ServeRequest> {
    let id = get_str(obj, "id")?;
    let checkpoint = WireCheckpoint {
        epoch: get_u64_or(obj, "epoch", 0)?,
        injects: get_u64_or(obj, "injects", 0)?,
        config: parse_config(obj)?,
        snapshot: parse_snapshot(obj)?,
        detector: parse_detector(obj)?,
    };
    Ok(ServeRequest::Restore { id, checkpoint })
}

fn parse_inject(obj: &JsonValue) -> Parsed<ServeRequest> {
    let id = get_str(obj, "id")?;
    let defaults = FaultKnobs::default();
    let faults = match obj.get("faults") {
        None => defaults,
        Some(f) => {
            if f.as_obj().is_none() {
                return Err(bad("'faults' must be an object"));
            }
            FaultKnobs {
                loss: get_unit_or(f, "loss", defaults.loss)?,
                duplication: get_unit_or(f, "duplication", defaults.duplication)?,
                max_delay: get_u64_or(f, "max_delay", defaults.max_delay as u64)? as u32,
                crash_fraction: get_unit_or(f, "crash_fraction", defaults.crash_fraction)?,
                crash_down: get_u64_or(f, "crash_down", defaults.crash_down as u64)? as usize,
                // Absent → the default recovery round; explicit null →
                // epoch-permanent crashes.
                crash_up: match f.get("crash_up") {
                    None => defaults.crash_up,
                    Some(JsonValue::Null) => None,
                    Some(v) => Some(
                        v.as_u64().ok_or_else(|| bad("'crash_up' must be an integer or null"))?
                            as usize,
                    ),
                },
                seed: get_u64_or(f, "seed", defaults.seed)?,
            }
        }
    };
    Ok(ServeRequest::Inject { id, faults })
}

/// Parses one request line into a [`ServeRequest`], mapping every
/// malformed input to a typed [`ServeError`].
pub fn parse_request(line: &str) -> Result<ServeRequest, ServeError> {
    let value = json::parse(line).map_err(|e| ServeError::BadJson { detail: e.to_string() })?;
    if value.as_obj().is_none() {
        return Err(bad("a request must be a JSON object"));
    }
    let op = get_str(&value, "op")?;
    match op.as_str() {
        "create" => parse_create(&value),
        "events" => parse_events(&value),
        "query" => {
            let id = get_str(&value, "id")?;
            let what = get_str(&value, "what")?;
            let what = QueryKind::by_name(&what)
                .ok_or_else(|| bad(format!("unknown query kind '{what}'")))?;
            Ok(ServeRequest::Query { id, what })
        }
        "checkpoint" => Ok(ServeRequest::Checkpoint { id: get_str(&value, "id")? }),
        "restore" => parse_restore(&value),
        "inject" => parse_inject(&value),
        "shutdown" => Ok(ServeRequest::Shutdown),
        _ => Err(ServeError::UnknownOp { op }),
    }
}

// ---------------------------------------------------------------------------
// Canonical encoding.

fn push_key(out: &mut String, key: &str) {
    json::push_str_literal(out, key);
    out.push(':');
}

fn push_vec3(out: &mut String, v: [f64; 3]) {
    out.push('[');
    for (i, c) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_f64(out, *c);
    }
    out.push(']');
}

fn push_usize_list(out: &mut String, xs: &[usize]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

fn push_bool_list(out: &mut String, xs: &[bool]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(if *x { "true" } else { "false" });
    }
    out.push(']');
}

fn push_u64_list(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

fn push_config(out: &mut String, cfg: &WireConfig) {
    out.push('{');
    push_key(out, "error");
    match cfg.error {
        Some(e) => out.push_str(&e.to_string()),
        None => out.push_str("null"),
    }
    out.push(',');
    push_key(out, "noise_seed");
    out.push_str(&cfg.noise_seed.to_string());
    for (key, v) in [
        ("theta", cfg.theta.map(|v| v as u64)),
        ("ttl", cfg.ttl.map(u64::from)),
        ("witness_hops", cfg.witness_hops.map(u64::from)),
    ] {
        out.push(',');
        push_key(out, key);
        match v {
            Some(v) => out.push_str(&v.to_string()),
            None => out.push_str("null"),
        }
    }
    out.push(',');
    push_key(out, "backend");
    json::push_str_literal(out, cfg.backend.as_str());
    out.push('}');
}

fn push_checkpoint_body(out: &mut String, cp: &WireCheckpoint) {
    push_key(out, "epoch");
    out.push_str(&cp.epoch.to_string());
    out.push(',');
    push_key(out, "injects");
    out.push_str(&cp.injects.to_string());
    out.push(',');
    push_key(out, "config");
    push_config(out, &cp.config);
    out.push(',');
    push_key(out, "snapshot");
    out.push('{');
    push_key(out, "range");
    json::push_f64(out, cp.snapshot.range);
    out.push(',');
    push_key(out, "positions");
    out.push('[');
    for (i, p) in cp.snapshot.positions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_vec3(out, *p);
    }
    out.push(']');
    out.push(',');
    push_key(out, "alive");
    push_bool_list(out, &cp.snapshot.alive);
    out.push('}');
    out.push(',');
    push_key(out, "detector");
    out.push('{');
    push_key(out, "candidates");
    push_bool_list(out, &cp.detector.candidates);
    out.push(',');
    push_key(out, "degenerate");
    push_bool_list(out, &cp.detector.degenerate);
    out.push(',');
    push_key(out, "balls");
    push_u64_list(out, &cp.detector.balls);
    out.push(',');
    push_key(out, "fragments");
    push_usize_list(out, &cp.detector.fragments);
    out.push(',');
    push_key(out, "boundary");
    push_bool_list(out, &cp.detector.boundary);
    out.push(',');
    push_key(out, "groups");
    out.push('[');
    for (i, g) in cp.detector.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_usize_list(out, g);
    }
    out.push(']');
    out.push('}');
}

/// Encodes a request in canonical form (fixed key order, one line, no
/// trailing newline). `parse_request` inverts it.
pub fn encode_request(req: &ServeRequest) -> String {
    let mut out = String::new();
    out.push('{');
    push_key(&mut out, "op");
    match req {
        ServeRequest::Create { id, source, config } => {
            out.push_str("\"create\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            match source {
                CreateSource::Scene(scene) => {
                    push_key(&mut out, "scene");
                    out.push('{');
                    push_key(&mut out, "scenario");
                    json::push_str_literal(&mut out, &scene.scenario);
                    out.push(',');
                    push_key(&mut out, "surface");
                    out.push_str(&scene.surface.to_string());
                    out.push(',');
                    push_key(&mut out, "interior");
                    out.push_str(&scene.interior.to_string());
                    out.push(',');
                    push_key(&mut out, "degree");
                    json::push_f64(&mut out, scene.degree);
                    out.push(',');
                    push_key(&mut out, "seed");
                    out.push_str(&scene.seed.to_string());
                    out.push('}');
                }
                CreateSource::Positions { positions, range } => {
                    push_key(&mut out, "positions");
                    out.push('[');
                    for (i, p) in positions.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_vec3(&mut out, *p);
                    }
                    out.push(']');
                    out.push(',');
                    push_key(&mut out, "range");
                    json::push_f64(&mut out, *range);
                }
            }
            out.push(',');
            push_key(&mut out, "config");
            push_config(&mut out, config);
        }
        ServeRequest::Events { id, events } => {
            out.push_str("\"events\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_key(&mut out, "events");
            out.push('[');
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_key(&mut out, "kind");
                match ev {
                    WireEvent::Join { position } => {
                        out.push_str("\"join\",");
                        push_key(&mut out, "position");
                        push_vec3(&mut out, *position);
                    }
                    WireEvent::Leave { node } => {
                        out.push_str("\"leave\",");
                        push_key(&mut out, "node");
                        out.push_str(&node.to_string());
                    }
                    WireEvent::Move { node, to } => {
                        out.push_str("\"move\",");
                        push_key(&mut out, "node");
                        out.push_str(&node.to_string());
                        out.push(',');
                        push_key(&mut out, "to");
                        push_vec3(&mut out, *to);
                    }
                }
                out.push('}');
            }
            out.push(']');
        }
        ServeRequest::Query { id, what } => {
            out.push_str("\"query\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_key(&mut out, "what");
            json::push_str_literal(&mut out, what.as_str());
        }
        ServeRequest::Checkpoint { id } => {
            out.push_str("\"checkpoint\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
        }
        ServeRequest::Restore { id, checkpoint } => {
            out.push_str("\"restore\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_checkpoint_body(&mut out, checkpoint);
        }
        ServeRequest::Inject { id, faults } => {
            out.push_str("\"inject\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_key(&mut out, "faults");
            out.push('{');
            push_key(&mut out, "loss");
            json::push_f64(&mut out, faults.loss);
            out.push(',');
            push_key(&mut out, "duplication");
            json::push_f64(&mut out, faults.duplication);
            out.push(',');
            push_key(&mut out, "max_delay");
            out.push_str(&faults.max_delay.to_string());
            out.push(',');
            push_key(&mut out, "crash_fraction");
            json::push_f64(&mut out, faults.crash_fraction);
            out.push(',');
            push_key(&mut out, "crash_down");
            out.push_str(&faults.crash_down.to_string());
            out.push(',');
            push_key(&mut out, "crash_up");
            match faults.crash_up {
                Some(up) => out.push_str(&up.to_string()),
                None => out.push_str("null"),
            }
            out.push(',');
            push_key(&mut out, "seed");
            out.push_str(&faults.seed.to_string());
            out.push('}');
        }
        ServeRequest::Shutdown => {
            out.push_str("\"shutdown\"");
        }
    }
    out.push('}');
    out
}

/// Encodes a response in canonical form (fixed key order, one line, no
/// trailing newline).
pub fn encode_response(resp: &ServeResponse) -> String {
    let mut out = String::new();
    out.push('{');
    match resp {
        ServeResponse::Created { id, nodes, live, boundary, groups, balls } => {
            push_key(&mut out, "ok");
            out.push_str("\"create\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            for (key, v) in [
                ("nodes", *nodes as u64),
                ("live", *live as u64),
                ("boundary", *boundary as u64),
                ("groups", *groups as u64),
                ("balls", *balls),
            ] {
                out.push(',');
                push_key(&mut out, key);
                out.push_str(&v.to_string());
            }
        }
        ServeResponse::Applied {
            id,
            epoch,
            applied,
            promoted,
            demoted,
            regrouped,
            halo,
            balls,
            boundary,
            groups,
        } => {
            push_key(&mut out, "ok");
            out.push_str("\"events\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            for (key, v) in [
                ("epoch", *epoch),
                ("applied", *applied as u64),
                ("promoted", *promoted as u64),
                ("demoted", *demoted as u64),
                ("regrouped", *regrouped as u64),
                ("halo", *halo as u64),
                ("balls", *balls),
                ("boundary", *boundary as u64),
                ("groups", *groups as u64),
            ] {
                out.push(',');
                push_key(&mut out, key);
                out.push_str(&v.to_string());
            }
        }
        ServeResponse::BoundaryNodes { id, nodes } => {
            push_query_head(&mut out, id, QueryKind::Boundary);
            push_key(&mut out, "nodes");
            push_usize_list(&mut out, nodes);
        }
        ServeResponse::GroupList { id, groups } => {
            push_query_head(&mut out, id, QueryKind::Groups);
            push_key(&mut out, "groups");
            out.push('[');
            for (i, g) in groups.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_usize_list(&mut out, g);
            }
            out.push(']');
        }
        ServeResponse::FragmentList { id, fragments } => {
            push_query_head(&mut out, id, QueryKind::Fragments);
            push_key(&mut out, "fragments");
            out.push('[');
            for (i, (node, size)) in fragments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&node.to_string());
                out.push(',');
                out.push_str(&size.to_string());
                out.push(']');
            }
            out.push(']');
        }
        ServeResponse::StatsRows { id, rows } => {
            push_query_head(&mut out, id, QueryKind::Stats);
            push_key(&mut out, "rows");
            out.push('[');
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_key(&mut out, "span");
                json::push_str_literal(&mut out, &r.span);
                for (key, v) in [
                    ("nodes", r.nodes),
                    ("rounds", r.rounds),
                    ("messages", r.messages),
                    ("bytes", r.bytes),
                    ("delivered", r.delivered),
                    ("dropped", r.dropped),
                    ("duplicated", r.duplicated),
                    ("delayed", r.delayed),
                    ("crash_lost", r.crash_lost),
                    ("ball_tests", r.ball_tests),
                    ("tested_nodes", r.tested_nodes),
                    ("retransmits", r.retransmits),
                    ("reforwards", r.reforwards),
                    ("verdicts", r.verdicts),
                    ("degraded", r.degraded),
                    ("unreached", r.unreached),
                ] {
                    out.push(',');
                    push_key(&mut out, key);
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push(']');
        }
        ServeResponse::MeshList { id, meshes } => {
            push_query_head(&mut out, id, QueryKind::Mesh);
            push_key(&mut out, "meshes");
            out.push('[');
            for (i, m) in meshes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_key(&mut out, "group");
                out.push_str(&m.group.to_string());
                for (key, v) in [
                    ("size", m.size as i64),
                    ("landmarks", m.landmarks as i64),
                    ("faces", m.faces as i64),
                    ("euler", m.euler),
                    ("manifold_ppm", m.manifold_ppm as i64),
                ] {
                    out.push(',');
                    push_key(&mut out, key);
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push(']');
        }
        ServeResponse::CheckpointTaken { id, checkpoint } => {
            push_key(&mut out, "ok");
            out.push_str("\"checkpoint\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_checkpoint_body(&mut out, checkpoint);
        }
        ServeResponse::Restored { id, nodes, live, boundary, groups } => {
            push_key(&mut out, "ok");
            out.push_str("\"restore\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            for (key, v) in
                [("nodes", *nodes), ("live", *live), ("boundary", *boundary), ("groups", *groups)]
            {
                out.push(',');
                push_key(&mut out, key);
                out.push_str(&v.to_string());
            }
        }
        ServeResponse::Injected {
            id,
            epoch,
            exact,
            cause,
            coverage_ppm,
            unreached,
            boundary,
            rounds,
            clean_rounds,
            repairs,
            exhausted,
            live,
            crashed,
        } => {
            push_key(&mut out, "ok");
            out.push_str("\"inject\",");
            push_key(&mut out, "id");
            json::push_str_literal(&mut out, id);
            out.push(',');
            push_key(&mut out, "epoch");
            out.push_str(&epoch.to_string());
            out.push(',');
            push_key(&mut out, "exact");
            out.push_str(if *exact { "true" } else { "false" });
            out.push(',');
            push_key(&mut out, "cause");
            json::push_str_literal(&mut out, cause);
            for (key, v) in [
                ("coverage_ppm", *coverage_ppm),
                ("unreached", *unreached as u64),
                ("boundary", *boundary as u64),
                ("rounds", *rounds as u64),
                ("clean_rounds", *clean_rounds as u64),
                ("repairs", *repairs),
                ("exhausted", *exhausted),
                ("live", *live as u64),
                ("crashed", *crashed as u64),
            ] {
                out.push(',');
                push_key(&mut out, key);
                out.push_str(&v.to_string());
            }
        }
        ServeResponse::ShutdownOk => {
            push_key(&mut out, "ok");
            out.push_str("\"shutdown\"");
        }
        ServeResponse::Error(err) => {
            push_key(&mut out, "err");
            json::push_str_literal(&mut out, err.code());
            out.push(',');
            push_key(&mut out, "detail");
            json::push_str_literal(&mut out, &err.detail());
        }
    }
    out.push('}');
    out
}

fn push_query_head(out: &mut String, id: &str, what: QueryKind) {
    push_key(out, "ok");
    out.push_str("\"query\",");
    push_key(out, "id");
    json::push_str_literal(out, id);
    out.push(',');
    push_key(out, "what");
    json::push_str_literal(out, what.as_str());
    out.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::Create {
                id: "a".to_string(),
                source: CreateSource::Scene(WireScene {
                    scenario: "box".to_string(),
                    surface: 40,
                    interior: 60,
                    degree: 12.5,
                    seed: 7,
                }),
                config: WireConfig { error: Some(0), ..WireConfig::default() },
            },
            ServeRequest::Create {
                id: "b".to_string(),
                source: CreateSource::Positions {
                    positions: vec![[0.0, 0.0, 0.0], [0.75, -0.25, 0.5]],
                    range: 1.0,
                },
                config: WireConfig { backend: WireBackend::Stat, ..WireConfig::default() },
            },
            ServeRequest::Events {
                id: "a".to_string(),
                events: vec![
                    WireEvent::Join { position: [1.0, 2.0, 3.0] },
                    WireEvent::Leave { node: 5 },
                    WireEvent::Move { node: 3, to: [-0.5, 0.25, 0.125] },
                ],
            },
            ServeRequest::Query { id: "a".to_string(), what: QueryKind::Boundary },
            ServeRequest::Checkpoint { id: "a".to_string() },
            ServeRequest::Restore {
                id: "c".to_string(),
                checkpoint: WireCheckpoint {
                    epoch: 2,
                    injects: 1,
                    config: WireConfig { theta: Some(12), ..WireConfig::default() },
                    snapshot: WireSnapshot {
                        range: 1.0,
                        positions: vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
                        alive: vec![true, false],
                    },
                    detector: WireDetector {
                        candidates: vec![true, false],
                        degenerate: vec![false, false],
                        balls: vec![10, 0],
                        fragments: vec![2, 0],
                        boundary: vec![true, false],
                        groups: vec![vec![0]],
                    },
                },
            },
            ServeRequest::Inject {
                id: "a".to_string(),
                faults: FaultKnobs {
                    loss: 0.25,
                    crash_fraction: 0.1,
                    crash_up: None,
                    seed: 9,
                    ..FaultKnobs::default()
                },
            },
            ServeRequest::Shutdown,
        ]
    }

    #[test]
    fn canonical_encoding_round_trips_through_parse() {
        for req in sample_requests() {
            let line = encode_request(&req);
            let back = parse_request(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, req, "{line}");
            // The canonical form is a fixed point.
            assert_eq!(encode_request(&back), line);
        }
    }

    #[test]
    fn permissive_parse_fills_defaults() {
        let req = parse_request(r#"{"op":"create","id":"x","scene":{"scenario":"sphere"}}"#)
            .expect("defaults fill in");
        match req {
            ServeRequest::Create { source: CreateSource::Scene(s), config, .. } => {
                assert_eq!(s.surface, 150);
                assert_eq!(s.interior, 250);
                assert_eq!(s.seed, 0);
                assert_eq!(config, WireConfig::default());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request(r#"{"op":"inject","id":"x"}"#).expect("fault defaults") {
            ServeRequest::Inject { faults, .. } => assert_eq!(faults, FaultKnobs::default()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_map_to_typed_errors() {
        let cases: Vec<(&str, &str)> = vec![
            ("{nope", "bad-json"),
            ("[1,2]", "bad-request"),
            (r#"{"op":"transmogrify"}"#, "unknown-op"),
            (r#"{"op":"create","id":"x"}"#, "bad-request"),
            (r#"{"op":"create","id":"x","positions":[[0,0]],"range":1}"#, "bad-request"),
            (r#"{"op":"create","id":"x","positions":[[0,0,0]],"range":-1}"#, "bad-request"),
            (r#"{"op":"create","id":"x","positions":[[0,0,1e999]],"range":1}"#, "bad-request"),
            (r#"{"op":"events","id":"x"}"#, "bad-request"),
            (r#"{"op":"events","id":"x","events":[{"kind":"warp","node":1}]}"#, "bad-request"),
            (r#"{"op":"query","id":"x","what":"entropy"}"#, "bad-request"),
            (r#"{"op":"inject","id":"x","faults":{"loss":1.5}}"#, "bad-request"),
            (r#"{"op":"restore","id":"x"}"#, "bad-request"),
            (
                r#"{"op":"create","id":"x","positions":[[0,0,0]],"range":1,"config":{"backend":"svw"}}"#,
                "bad-request",
            ),
            (
                r#"{"op":"create","id":"x","positions":[[0,0,0]],"range":1,"config":{"backend":7}}"#,
                "bad-request",
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code(), code, "{line} -> {err}");
        }
    }

    #[test]
    fn wire_backends_mirror_the_registry() {
        // One variant per registry name, same order, every name valid —
        // adding a backend to `ballfit_backends::NAMES` must extend
        // `WireBackend` too.
        let wire: Vec<&str> = WireBackend::ALL.iter().map(|b| b.as_str()).collect();
        assert_eq!(wire, ballfit_backends::NAMES.to_vec());
        for name in ballfit_backends::NAMES {
            let b = WireBackend::by_name(name).expect("registry name has a wire spelling");
            assert!(ballfit_backends::by_name(b.as_str()).is_some());
        }
        assert_eq!(WireBackend::default(), WireBackend::Ubf, "default backend is the reference");
    }

    #[test]
    fn backend_parses_permissively_and_encodes_canonically() {
        let req = parse_request(
            r#"{"op":"create","id":"x","positions":[[0,0,0]],"range":1,"config":{"backend":"stat"}}"#,
        )
        .expect("stat backend parses");
        match &req {
            ServeRequest::Create { config, .. } => assert_eq!(config.backend, WireBackend::Stat),
            other => panic!("unexpected {other:?}"),
        }
        let line = encode_request(&req);
        assert!(line.contains(r#""backend":"stat""#), "{line}");
        assert_eq!(parse_request(&line).expect("canonical form parses"), req);
    }

    #[test]
    fn error_responses_encode_code_and_detail() {
        let resp = ServeResponse::Error(ServeError::UnknownInstance { id: "q".to_string() });
        assert_eq!(
            encode_response(&resp),
            r#"{"err":"unknown-instance","detail":"no instance 'q'"}"#
        );
    }
}
