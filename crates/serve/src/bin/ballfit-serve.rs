//! The serve daemon: JSONL requests on stdin, one response line per
//! request line on stdout. `--threads N` sets the worker pool that
//! instances shard across (default: the `BALLFIT_THREADS` environment
//! override, else all available cores); the response bytes are identical
//! at every thread count.

use ballfit_par::Parallelism;

const USAGE: &str = "usage: ballfit-serve [--threads N]
Reads JSONL requests from stdin to EOF and writes one JSONL response per
request line to stdout. See the ballfit-serve crate docs for the wire
protocol.";

fn main() {
    let mut parallelism = Parallelism::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a positive integer\n{USAGE}");
                    std::process::exit(2);
                });
                parallelism = Parallelism::threads(n);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = ballfit_serve::run_stdio(parallelism) {
        eprintln!("ballfit-serve: io error: {e}");
        std::process::exit(1);
    }
}
