//! `ballfit-serve`: a multi-tenant boundary-detection service with a
//! deterministic wire protocol.
//!
//! The crate turns the one-shot detection pipeline into a long-lived
//! front end: a [`Service`] owns many concurrent network instances keyed
//! by instance id, each an incrementally-maintained
//! [`ballfit::incremental::IncrementalDetector`] over a
//! [`ballfit_wsn::churn::DynamicTopology`]. Requests arrive either as
//! typed [`ServeRequest`] values (the in-process API) or as JSONL over
//! stdin/stdout (the `ballfit-serve` binary — the container model has no
//! sockets, so a pipe *is* the transport).
//!
//! Operations:
//!
//! * `create` — instantiate from a netgen scene or explicit positions.
//! * `events` — apply a batch of topology events as one epoch through
//!   the incremental detector.
//! * `query` — read boundary / groups / fragments / mesh statistics /
//!   `obs::summary` protocol rows.
//! * `checkpoint` / `restore` — capture an instance (topology snapshot +
//!   detector checkpoint + epoch counters) and revive it, on the same or
//!   a different service, without disturbing replay identity.
//! * `inject` — run one fault epoch ([`ballfit::chaos::run_epoch`])
//!   against the instance's oracle and report the watchdog verdict.
//! * `shutdown` — stop serving; later requests get a typed error.
//!
//! # Determinism
//!
//! The response log is a pure function of the request log: byte-identical
//! across repeated runs and across worker-thread counts (instances shard
//! over the `ballfit-par` pool; each instance's work is sequential and in
//! log order). All reported quantities are logical — rounds, counters,
//! ppm fractions — never wall-clock. See `crates/serve/src/service.rs`
//! module docs for the three rules that make this hold.

pub mod json;
pub mod service;
pub mod wire;

pub use service::{Instance, Service};
pub use wire::{
    encode_request, encode_response, parse_request, CreateSource, FaultKnobs, MeshRow, QueryKind,
    ServeError, ServeRequest, ServeResponse, StatsRow, WireBackend, WireCheckpoint, WireConfig,
    WireDetector, WireEvent, WireScene, WireSnapshot,
};

use ballfit_par::Parallelism;

/// Serves a complete JSONL transcript with a fresh [`Service`]: reads
/// `input` to the end, answers every line in order, returns the response
/// log. This batch shape (read-all, then serve) is the stdio transport's
/// semantics — it keeps the response log a pure function of the request
/// log even though instances are served concurrently.
pub fn serve_transcript(input: &str, parallelism: Parallelism) -> String {
    Service::new(parallelism).serve_jsonl(input)
}

/// The `ballfit-serve` binary's body: reads stdin to EOF, serves the
/// transcript over `parallelism` workers, writes one response line per
/// request line to stdout.
///
/// # Errors
///
/// Propagates stdin read / stdout write failures.
pub fn run_stdio(parallelism: Parallelism) -> std::io::Result<()> {
    use std::io::{Read, Write};
    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input)?;
    let output = serve_transcript(&input, parallelism);
    std::io::stdout().write_all(output.as_bytes())
}
