//! # ballfit-netgen
//!
//! 3D wireless-network scenario generator for the `ballfit` reproduction of
//! *"Localized Algorithm for Precise Boundary Detection in 3D Wireless
//! Networks"* (ICDCS 2010).
//!
//! The paper constructs its simulated networks with TetGen and a set of 3D
//! graphic tools (Sec. IV-A): a 3D model is built; nodes are sampled
//! randomly uniformly *on its surface* (the ground-truth boundary nodes)
//! and *inside* it (the interior cloud); a radio range is chosen to make
//! the network connected with average nodal degree ≈ 18.5; and distance
//! measurements carry random errors of 0–100% of the radio range.
//!
//! This crate replaces that toolchain from scratch:
//!
//! * [`scenario::Scenario`] — the five evaluation scenarios (underwater
//!   column, space network with one and two interior holes, bended pipe,
//!   sphere) plus extra shapes, built on the SDF algebra of `ballfit-geom`.
//! * [`sampler`] — rejection sampling for interior clouds and
//!   project-to-surface sampling for ground-truth boundary nodes, with
//!   optional minimum-spacing thinning.
//! * [`builder::NetworkBuilder`] — end-to-end generation with radio-range
//!   calibration to a target average degree.
//! * [`model::NetworkModel`] — the generated network: positions, ground
//!   truth, radio range, topology.
//! * [`measure`] — distance-measurement error models and the deterministic
//!   per-pair [`measure::DistanceOracle`].
//! * [`churn`] — the dynamic-network hook: [`churn::ChurnDriver`] resolves
//!   abstract churn schedules into concrete in-shape topology events.
//!
//! # Example
//!
//! ```
//! use ballfit_netgen::builder::NetworkBuilder;
//! use ballfit_netgen::scenario::Scenario;
//!
//! let model = NetworkBuilder::new(Scenario::SolidSphere)
//!     .surface_nodes(300)
//!     .interior_nodes(700)
//!     .target_degree(16.0)
//!     .seed(7)
//!     .build()
//!     .expect("generation succeeds");
//! assert_eq!(model.len(), 1000);
//! assert!(model.topology().is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod churn;
pub mod measure;
pub mod model;
pub mod sampler;
pub mod scenario;

/// Errors produced while generating a network.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// Rejection sampling failed to place the requested nodes (shape too
    /// thin relative to its bounding box, or budget too small).
    SamplingBudgetExhausted {
        /// Nodes successfully placed.
        placed: usize,
        /// Nodes requested.
        requested: usize,
    },
    /// No radio range within the search bracket achieves the target degree.
    DegreeUnreachable {
        /// Target average degree.
        target: f64,
        /// Best achieved average degree.
        achieved: f64,
    },
    /// The generated network is not connected at the chosen radio range.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::SamplingBudgetExhausted { placed, requested } => {
                write!(f, "sampling budget exhausted: placed {placed} of {requested} nodes")
            }
            GenError::DegreeUnreachable { target, achieved } => {
                write!(f, "target degree {target} unreachable (best {achieved:.2})")
            }
            GenError::Disconnected { components } => {
                write!(f, "generated network has {components} connected components")
            }
        }
    }
}

impl std::error::Error for GenError {}
