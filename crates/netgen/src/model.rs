//! The generated network model: positions, ground truth, topology.

use ballfit_geom::sdf::Sdf;
use ballfit_geom::Vec3;
use ballfit_wsn::Topology;

use crate::measure::{DistanceOracle, ErrorModel};
use crate::scenario::Scenario;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A simulated 3D wireless network: the input to the boundary-detection
/// pipeline plus the ground truth to evaluate it against.
///
/// Constructed by [`crate::builder::NetworkBuilder`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NetworkModel {
    scenario: Scenario,
    shape_seed: u64,
    positions: Vec<Vec3>,
    is_surface: Vec<bool>,
    radio_range: f64,
    topology: Topology,
}

impl NetworkModel {
    /// Assembles a model from its parts (used by the builder; tests may
    /// construct directly).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or the topology node count differs.
    pub fn from_parts(
        scenario: Scenario,
        shape_seed: u64,
        positions: Vec<Vec3>,
        is_surface: Vec<bool>,
        radio_range: f64,
        topology: Topology,
    ) -> Self {
        assert_eq!(positions.len(), is_surface.len(), "ground-truth length mismatch");
        assert_eq!(positions.len(), topology.len(), "topology node-count mismatch");
        assert!(radio_range > 0.0, "radio range must be positive");
        NetworkModel { scenario, shape_seed, positions, is_surface, radio_range, topology }
    }

    /// The scenario this network was generated from.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Rebuilds the scenario solid (for surface-deviation metrics).
    pub fn shape(&self) -> Box<dyn Sdf> {
        self.scenario.build(self.shape_seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node positions (the *true* coordinates; the pipeline only sees them
    /// through the distance oracle unless configured otherwise).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Ground truth: `true` for nodes sampled on the model surface.
    pub fn is_surface(&self) -> &[bool] {
        &self.is_surface
    }

    /// Indices of ground-truth boundary nodes.
    pub fn surface_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_surface[i]).collect()
    }

    /// Number of ground-truth boundary nodes.
    pub fn surface_count(&self) -> usize {
        self.is_surface.iter().filter(|&&b| b).count()
    }

    /// The radio transmission range.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// The connectivity graph at the radio range.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// True Euclidean distance between two nodes.
    pub fn true_distance(&self, i: usize, j: usize) -> f64 {
        self.positions[i].distance(self.positions[j])
    }

    /// Creates a measurement oracle over this network for the given error
    /// model, seeded independently of the generation seed by `noise_seed`.
    pub fn oracle(&self, model: ErrorModel, noise_seed: u64) -> DistanceOracle {
        DistanceOracle::new(model, self.radio_range, noise_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> NetworkModel {
        let positions = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)];
        let topo = Topology::from_positions(&positions, 0.6);
        NetworkModel::from_parts(
            Scenario::SolidSphere,
            0,
            positions,
            vec![true, false, true],
            0.6,
            topo,
        )
    }

    #[test]
    fn accessors() {
        let m = tiny_model();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.surface_count(), 2);
        assert_eq!(m.surface_indices(), vec![0, 2]);
        assert_eq!(m.radio_range(), 0.6);
        assert_eq!(m.scenario(), Scenario::SolidSphere);
        assert!((m.true_distance(0, 2) - 1.0).abs() < 1e-12);
        assert_eq!(m.topology().neighbors(1), &[0, 2]);
    }

    #[test]
    fn oracle_reflects_error_model() {
        let m = tiny_model();
        let perfect = m.oracle(ErrorModel::None, 1);
        assert_eq!(perfect.measure(0, 1, 0.5), 0.5);
        let noisy = m.oracle(ErrorModel::UniformRadius { fraction: 0.5 }, 1);
        // Almost surely different from truth.
        assert_ne!(noisy.measure(0, 1, 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_ground_truth_panics() {
        let positions = vec![Vec3::ZERO];
        let topo = Topology::from_positions(&positions, 1.0);
        let _ = NetworkModel::from_parts(Scenario::SolidBox, 0, positions, vec![], 1.0, topo);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn shape_is_reconstructible() {
        let m = tiny_model();
        let s = m.shape();
        // Sphere scenario radius 4 centered at origin.
        assert!(s.contains(Vec3::ZERO));
        assert!(!s.contains(Vec3::new(5.0, 0.0, 0.0)));
    }
}
