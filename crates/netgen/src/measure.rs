//! Distance-measurement error models and the per-pair measurement oracle.
//!
//! The paper's only noise source (Sec. IV-A): nodes estimate distances to
//! neighbors by ranging (RSSI/TDOA), with "a wide range of random errors,
//! from 0 to 100% of the radio transmission radius". The
//! [`DistanceOracle`] realizes that: each unordered node pair gets one
//! deterministic noisy measurement, the same no matter which endpoint (or
//! which experiment pass) asks — exactly like a physical link.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A distance-measurement error model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ErrorModel {
    /// Perfect ranging.
    None,
    /// The paper's model: additive error uniform in `±fraction · range`.
    UniformRadius {
        /// Error magnitude as a fraction of the radio range (0–1 in the
        /// paper's sweeps).
        fraction: f64,
    },
    /// Additive zero-mean Gaussian error with `σ = sigma_fraction · range`.
    Gaussian {
        /// Standard deviation as a fraction of the radio range.
        sigma_fraction: f64,
    },
    /// Multiplicative error uniform in `±fraction · d_true` (RSSI-like:
    /// error grows with distance).
    Proportional {
        /// Relative error magnitude.
        fraction: f64,
    },
}

impl ErrorModel {
    /// The paper's sweep axis: uniform additive error of `percent`% of the
    /// radio range.
    pub fn paper_percent(percent: u32) -> ErrorModel {
        if percent == 0 {
            ErrorModel::None
        } else {
            ErrorModel::UniformRadius { fraction: percent as f64 / 100.0 }
        }
    }

    /// Applies the model to a true distance, given the radio `range` and a
    /// source of randomness. Results are clamped to be non-negative.
    pub fn perturb<R: Rng>(&self, d_true: f64, range: f64, rng: &mut R) -> f64 {
        let noisy = match *self {
            ErrorModel::None => d_true,
            ErrorModel::UniformRadius { fraction } => {
                // Exact sentinel: fraction 0 means "no noise", and must not
                // consume RNG draws (seed-stream compatibility).
                // ballfit-lint: allow(float-safety)
                if fraction == 0.0 {
                    d_true
                } else {
                    d_true + rng.gen_range(-1.0..1.0) * fraction * range
                }
            }
            ErrorModel::Gaussian { sigma_fraction } => {
                // Box–Muller transform; `rand` provides no normal sampler
                // without `rand_distr`.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                d_true + z * sigma_fraction * range
            }
            ErrorModel::Proportional { fraction } => {
                d_true * (1.0 + rng.gen_range(-1.0..1.0) * fraction)
            }
        };
        noisy.max(0.0)
    }
}

/// Deterministic per-pair distance measurements.
///
/// For an unordered pair `(i, j)` the oracle derives an RNG from
/// `(seed, min(i,j), max(i,j))`, so repeated queries — from either endpoint
/// and across pipeline phases — return the identical measurement.
#[derive(Debug, Clone, Copy)]
pub struct DistanceOracle {
    model: ErrorModel,
    range: f64,
    seed: u64,
}

impl DistanceOracle {
    /// Creates an oracle for a network with the given radio `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive.
    pub fn new(model: ErrorModel, range: f64, seed: u64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        DistanceOracle { model, range, seed }
    }

    /// The error model in force.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Measures the distance between nodes `i` and `j` whose true distance
    /// is `d_true`. Symmetric and deterministic.
    pub fn measure(&self, i: usize, j: usize, d_true: f64) -> f64 {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        // SplitMix-style mixing of (seed, lo, hi) into an RNG seed.
        let mut h = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((hi as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        h ^= h >> 31;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 29;
        let mut rng = StdRng::seed_from_u64(h);
        self.model.perturb(d_true, self.range, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ErrorModel::None.perturb(0.7, 1.0, &mut rng), 0.7);
        assert_eq!(ErrorModel::paper_percent(0), ErrorModel::None);
    }

    #[test]
    fn uniform_error_is_bounded() {
        let m = ErrorModel::UniformRadius { fraction: 0.3 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.perturb(0.8, 1.0, &mut rng);
            assert!((0.5 - 1e-12..=1.1 + 1e-12).contains(&d), "out of band: {d}");
        }
    }

    #[test]
    fn proportional_error_scales_with_distance() {
        let m = ErrorModel::Proportional { fraction: 0.1 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = m.perturb(2.0, 1.0, &mut rng);
            assert!((1.8..=2.2).contains(&d));
        }
    }

    #[test]
    fn gaussian_error_has_roughly_right_spread() {
        let m = ErrorModel::Gaussian { sigma_fraction: 0.1 };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb(1.0, 1.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "sd {}", var.sqrt());
    }

    #[test]
    fn perturbation_never_negative() {
        let m = ErrorModel::UniformRadius { fraction: 1.0 };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(m.perturb(0.05, 1.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn oracle_is_symmetric_and_deterministic() {
        let o = DistanceOracle::new(ErrorModel::UniformRadius { fraction: 0.5 }, 1.0, 99);
        let a = o.measure(3, 17, 0.6);
        assert_eq!(a, o.measure(17, 3, 0.6));
        assert_eq!(a, o.measure(3, 17, 0.6));
        // Different pair → (almost surely) different noise.
        assert_ne!(a, o.measure(3, 18, 0.6));
        // Different oracle seed → different noise.
        let o2 = DistanceOracle::new(ErrorModel::UniformRadius { fraction: 0.5 }, 1.0, 100);
        assert_ne!(a, o2.measure(3, 17, 0.6));
    }

    #[test]
    fn paper_percent_constructor() {
        match ErrorModel::paper_percent(40) {
            ErrorModel::UniformRadius { fraction } => assert!((fraction - 0.4).abs() < 1e-12),
            other => panic!("unexpected model {other:?}"),
        }
    }
}
