//! Churn-aware scenario hooks: resolving abstract churn schedules into
//! concrete topology events inside a deployment shape.
//!
//! `ballfit_wsn::churn::ChurnPlan` decides *what* happens (who joins,
//! leaves, drifts) but deliberately knows nothing about geometry; joins
//! need a position and drift-moves must stay inside the deployment volume.
//! [`ChurnDriver`] closes that gap for a generated
//! [`NetworkModel`](crate::model::NetworkModel): it owns the scenario's
//! SDF solid, samples join positions by the same rejection discipline as
//! initial generation ([`crate::sampler::sample_interior`]), and clamps
//! drift targets back inside the solid — all seeded, so a `(plan,
//! position_seed)` pair replays to the identical event trace.

use ballfit_geom::sdf::Sdf;
use ballfit_wsn::churn::{ChurnAction, ChurnEvent, DynamicTopology, TopologyDelta, TopologyEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::model::NetworkModel;
use crate::sampler::sample_interior;
use crate::GenError;

/// Resolves abstract [`ChurnEvent`]s into concrete [`TopologyEvent`]s and
/// applies them to a [`DynamicTopology`] seeded from a generated model.
#[derive(Debug)]
pub struct ChurnDriver {
    shape: Box<dyn Sdf>,
    rng: StdRng,
    dynamic: DynamicTopology,
}

impl ChurnDriver {
    /// Starts a driver at the model's generated state. `position_seed`
    /// seeds the join-position sampler (independent of both the model's
    /// generation seed and the plan's decision seed, mirroring how
    /// measurement noise is seeded independently).
    pub fn new(model: &NetworkModel, position_seed: u64) -> Self {
        ChurnDriver {
            shape: model.shape(),
            rng: StdRng::seed_from_u64(position_seed),
            dynamic: DynamicTopology::new(model.positions(), model.radio_range()),
        }
    }

    /// The maintained dynamic topology.
    pub fn dynamic(&self) -> &DynamicTopology {
        &self.dynamic
    }

    /// Resolves one abstract event against the deployment shape without
    /// applying it:
    ///
    /// * `Join` — a fresh interior position, rejection-sampled like the
    ///   initial interior cloud.
    /// * `Leave` — passed through.
    /// * `Move` — target `position + offset`; if that lands outside the
    ///   solid the offset is halved until the target is inside again (at
    ///   most 4 times, then the node stays put), modelling drift pushed
    ///   back from the deployment boundary.
    pub fn resolve(&mut self, event: &ChurnEvent) -> Result<TopologyEvent, GenError> {
        match event.action {
            ChurnAction::Join { .. } => {
                let pos = sample_interior(self.shape.as_ref(), 1, 0.0, &mut self.rng)?;
                Ok(TopologyEvent::Join { position: pos[0] })
            }
            ChurnAction::Leave { node } => Ok(TopologyEvent::Leave { node }),
            ChurnAction::Move { node, offset } => {
                let home = self.dynamic.positions()[node];
                let mut step = offset;
                for _ in 0..4 {
                    if self.shape.contains(home + step) {
                        return Ok(TopologyEvent::Move { node, to: home + step });
                    }
                    step = step * 0.5;
                }
                Ok(TopologyEvent::Move { node, to: home })
            }
        }
    }

    /// Resolves and applies one event, returning the concrete event and
    /// the adjacency delta it produced.
    pub fn step(&mut self, event: &ChurnEvent) -> Result<(TopologyEvent, TopologyDelta), GenError> {
        let resolved = self.resolve(event)?;
        let delta = self.dynamic.apply(&resolved);
        Ok((resolved, delta))
    }

    /// Consumes the driver, yielding the final dynamic topology.
    pub fn into_dynamic(self) -> DynamicTopology {
        self.dynamic
    }
}

/// Shape-membership check used by tests and sweeps: `true` when every
/// live node sits inside (or within `tolerance` of) the solid.
pub fn all_live_inside(driver: &ChurnDriver, tolerance: f64) -> bool {
    let dynamic = driver.dynamic();
    dynamic
        .live_nodes()
        .into_iter()
        .all(|n| driver.shape.distance(dynamic.positions()[n]) <= tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::scenario::Scenario;
    use ballfit_geom::Vec3;
    use ballfit_wsn::churn::ChurnPlan;

    fn model() -> NetworkModel {
        NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(120)
            .interior_nodes(180)
            .target_degree(12.0)
            .require_connected(false)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn driver_replays_deterministically() {
        let model = model();
        let plan = ChurnPlan::none()
            .with_seed(5)
            .with_epochs(4)
            .with_join_rate(0.05)
            .with_leave_rate(0.05)
            .with_move_rate(0.1)
            .with_max_drift(model.radio_range());
        let schedule = plan.schedule(model.len());
        assert!(!schedule.is_empty());

        let run = |position_seed: u64| {
            let mut driver = ChurnDriver::new(&model, position_seed);
            let mut resolved = Vec::new();
            for ev in &schedule {
                let (event, delta) = driver.step(ev).expect("sphere sampling never exhausts");
                resolved.push(event);
                // Byte-identity of the incremental topology maintenance.
                assert_eq!(driver.dynamic().topology(), &driver.dynamic().rebuild_reference());
                let _ = delta;
            }
            (resolved, driver)
        };
        let (a, driver_a) = run(1);
        let (b, _) = run(1);
        let (c, _) = run(2);
        assert_eq!(a, b, "same position seed must replay identically");
        assert_ne!(a, c, "position seed must matter (join positions differ)");
        assert!(all_live_inside(&driver_a, 1e-9), "all nodes must stay inside the solid");
    }

    #[test]
    fn moves_are_clamped_into_the_shape() {
        let model = model();
        let mut driver = ChurnDriver::new(&model, 3);
        // Push a node with a drift far larger than the sphere: the halving
        // loop must keep it inside (or leave it at home).
        let node = 0;
        let huge = Vec3::new(100.0, 0.0, 0.0);
        let event = ChurnEvent { epoch: 0, action: ChurnAction::Move { node, offset: huge } };
        let resolved = driver.resolve(&event).unwrap();
        match resolved {
            TopologyEvent::Move { to, .. } => {
                assert!(
                    driver.shape.contains(to) || to == driver.dynamic().positions()[node],
                    "clamped move must stay inside or stay put"
                );
            }
            other => panic!("unexpected resolution {other:?}"),
        }
    }
}
