//! Point sampling inside and on the surface of SDF solids.

use ballfit_geom::sdf::Sdf;
use ballfit_geom::Vec3;
use rand::rngs::StdRng;
use rand::Rng;

use crate::GenError;

/// Samples a point uniformly in an axis-aligned box.
fn sample_in_bounds(rng: &mut StdRng, bounds: &ballfit_geom::Aabb) -> Vec3 {
    Vec3::new(
        rng.gen_range(bounds.min.x..=bounds.max.x),
        rng.gen_range(bounds.min.y..=bounds.max.y),
        rng.gen_range(bounds.min.z..=bounds.max.z),
    )
}

/// Rejection-samples `count` points uniformly inside the solid.
///
/// `margin` keeps points at least that far inside the surface (`distance <
/// -margin`); pass `0.0` for the full interior.
///
/// # Errors
///
/// [`GenError::SamplingBudgetExhausted`] if the acceptance rate is too low
/// to place `count` points within `count * 10_000` attempts.
pub fn sample_interior<S: Sdf + ?Sized>(
    sdf: &S,
    count: usize,
    margin: f64,
    rng: &mut StdRng,
) -> Result<Vec<Vec3>, GenError> {
    let bounds = sdf.bounds();
    let mut out = Vec::with_capacity(count);
    let budget = count.saturating_mul(10_000).max(10_000);
    let mut attempts = 0usize;
    while out.len() < count && attempts < budget {
        attempts += 1;
        let p = sample_in_bounds(rng, &bounds);
        if sdf.distance(p) < -margin {
            out.push(p);
        }
    }
    if out.len() < count {
        return Err(GenError::SamplingBudgetExhausted { placed: out.len(), requested: count });
    }
    Ok(out)
}

/// Samples `count` points (approximately uniformly) on the surface of the
/// solid: candidates are drawn from a thin shell `|distance| < shell` and
/// Newton-projected onto the zero level set.
///
/// `min_spacing`, when positive, thins the result so no two surface samples
/// are closer than that distance (a Poisson-disk-like blue-noise surface
/// distribution, which matches the paper's "randomly uniformly distributed
/// on the surface").
///
/// # Errors
///
/// [`GenError::SamplingBudgetExhausted`] if not enough surface points can
/// be placed.
pub fn sample_surface<S: Sdf + ?Sized>(
    sdf: &S,
    count: usize,
    shell: f64,
    min_spacing: f64,
    rng: &mut StdRng,
) -> Result<Vec<Vec3>, GenError> {
    assert!(shell > 0.0, "shell thickness must be positive");
    let bounds = sdf.bounds().inflated(shell);
    let mut out: Vec<Vec3> = Vec::with_capacity(count);
    let budget = count.saturating_mul(20_000).max(20_000);
    let mut attempts = 0usize;
    let spacing2 = min_spacing * min_spacing;
    while out.len() < count && attempts < budget {
        attempts += 1;
        let p = sample_in_bounds(rng, &bounds);
        if sdf.distance(p).abs() > shell {
            continue;
        }
        let q = sdf.project_to_surface(p, 15);
        if sdf.distance(q).abs() > shell * 0.1 {
            continue; // projection failed to converge (e.g. CSG crease)
        }
        if min_spacing > 0.0 && out.iter().any(|&e| e.distance_squared(q) < spacing2) {
            continue;
        }
        out.push(q);
    }
    if out.len() < count {
        return Err(GenError::SamplingBudgetExhausted { placed: out.len(), requested: count });
    }
    Ok(out)
}

/// Greedy minimum-spacing thinning: scans `pool` in order and keeps every
/// point at least `spacing` away from all previously kept points.
/// Because the pool is dense, the kept set is near-maximal: any location
/// farther than `spacing` from all kept points would have had its pool
/// candidate kept.
pub fn greedy_thin(pool: &[Vec3], spacing: f64) -> Vec<usize> {
    assert!(spacing >= 0.0, "spacing must be non-negative");
    // Exact sentinel: spacing is asserted >= 0, and exactly 0 means "keep
    // everything" — not a numeric comparison.
    // ballfit-lint: allow(float-safety)
    if spacing == 0.0 {
        return (0..pool.len()).collect();
    }
    let cell = spacing;
    let key = |p: Vec3| -> (i64, i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64, (p.z / cell).floor() as i64)
    };
    let mut grid: std::collections::BTreeMap<(i64, i64, i64), Vec<usize>> =
        std::collections::BTreeMap::new();
    let s2 = spacing * spacing;
    let mut kept = Vec::new();
    'pool: for (i, &p) in pool.iter().enumerate() {
        let (cx, cy, cz) = key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(bucket) = grid.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &j in bucket {
                            if pool[j].distance_squared(p) < s2 {
                                continue 'pool;
                            }
                        }
                    }
                }
            }
        }
        grid.entry((cx, cy, cz)).or_default().push(i);
        kept.push(i);
    }
    kept
}

/// Selects a near-maximal Poisson-disk subset of `pool` with approximately
/// `target` points, by bisecting the spacing. Returns `(points, spacing)`.
///
/// This emulates the vertex distribution of a quality tetrahedral mesher
/// (TetGen in the paper): minimum spacing between nodes *and* no large
/// empty voids, the property that keeps Unit Ball Fitting free of interior
/// false positives on the paper's workloads.
///
/// # Panics
///
/// Panics if `target == 0` or the pool is smaller than `target`.
pub fn poisson_select(pool: &[Vec3], target: usize) -> (Vec<Vec3>, f64) {
    assert!(target > 0, "target must be positive");
    assert!(pool.len() >= target, "pool smaller than target");
    let bounds = ballfit_geom::Aabb::from_points(pool).expect("non-empty pool");
    let mut lo = 0.0f64;
    let mut hi = bounds.extent().norm().max(1e-6);
    // count(spacing) is monotone non-increasing; find the largest spacing
    // keeping at least `target` points.
    let mut best: Option<(Vec<usize>, f64)> = None;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let kept = greedy_thin(pool, mid);
        if kept.len() >= target {
            lo = mid;
            best = Some((kept, mid));
        } else {
            hi = mid;
        }
    }
    let (kept, spacing) = best.unwrap_or_else(|| ((0..pool.len()).collect(), 0.0));
    let points: Vec<Vec3> = kept.into_iter().map(|i| pool[i]).collect();
    if points.len() == target {
        return (points, spacing);
    }
    // Trim to the exact target by dropping the most redundant points
    // (smallest nearest-neighbor distance first), which perturbs the
    // blue-noise coverage least. One grid-accelerated NN pass suffices —
    // the excess is a small fraction of the selection.
    let grid = ballfit_geom::grid::SpatialGrid::build(&points, spacing.max(1e-9));
    let mut nn: Vec<(f64, usize)> = (0..points.len())
        .map(|i| {
            // Nearest neighbor is at distance in [spacing, 2·spacing) for a
            // near-maximal set; widen the search radius until found.
            let mut radius = spacing.max(1e-9) * 2.0;
            loop {
                let near = grid.neighbors_within(&points, i, radius);
                if let Some(d) = near
                    .iter()
                    .map(|&j| points[i].distance_squared(points[j]))
                    .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.min(d))))
                {
                    return (d, i);
                }
                radius *= 2.0;
            }
        })
        .collect();
    nn.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let drop: std::collections::BTreeSet<usize> =
        nn.iter().take(points.len() - target).map(|&(_, i)| i).collect();
    let trimmed: Vec<Vec3> =
        points.iter().enumerate().filter(|(i, _)| !drop.contains(i)).map(|(_, &p)| p).collect();
    (trimmed, spacing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballfit_geom::sdf::SphereSdf;
    use rand::SeedableRng;

    #[test]
    fn interior_points_are_inside() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let pts = sample_interior(&s, 500, 0.0, &mut rng).unwrap();
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(s.contains(*p));
        }
    }

    #[test]
    fn interior_margin_is_respected() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let pts = sample_interior(&s, 200, 0.5, &mut rng).unwrap();
        for p in &pts {
            assert!(s.distance(*p) < -0.5 + 1e-12);
        }
    }

    #[test]
    fn interior_sampling_is_roughly_uniform() {
        // Halves of the ball should get comparable counts.
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sample_interior(&s, 2000, 0.0, &mut rng).unwrap();
        let upper = pts.iter().filter(|p| p.z > 0.0).count();
        assert!((800..=1200).contains(&upper), "upper half has {upper} of 2000");
    }

    #[test]
    fn surface_points_lie_on_surface() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sample_surface(&s, 300, 0.2, 0.0, &mut rng).unwrap();
        assert_eq!(pts.len(), 300);
        for p in &pts {
            assert!(s.distance(*p).abs() < 0.02, "off-surface point {p}");
        }
    }

    #[test]
    fn surface_spacing_is_enforced() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let spacing = 0.5;
        let pts = sample_surface(&s, 60, 0.2, spacing, &mut rng).unwrap();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(pts[j]) >= spacing - 1e-9, "pair ({i},{j}) too close");
            }
        }
    }

    #[test]
    fn impossible_spacing_exhausts_budget() {
        let s = SphereSdf::new(Vec3::ZERO, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        // Sphere area ≈ 12.6; 10 000 points with spacing 1 cannot fit.
        let err = sample_surface(&s, 10_000, 0.2, 1.0, &mut rng).unwrap_err();
        assert!(matches!(err, GenError::SamplingBudgetExhausted { .. }));
        let msg = err.to_string();
        assert!(msg.contains("budget exhausted"), "{msg}");
    }

    #[test]
    fn greedy_thin_enforces_spacing_and_maximality() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let pool = sample_interior(&s, 3000, 0.0, &mut rng).unwrap();
        let spacing = 0.5;
        let kept = greedy_thin(&pool, spacing);
        // Pairwise spacing.
        for (ai, &a) in kept.iter().enumerate() {
            for &b in &kept[ai + 1..] {
                assert!(pool[a].distance(pool[b]) >= spacing - 1e-12);
            }
        }
        // Near-maximality: every pool point is within `spacing` of a kept one.
        for &p in &pool {
            let near = kept.iter().any(|&k| pool[k].distance(p) < spacing);
            assert!(near, "pool point {p} uncovered");
        }
        // spacing == 0 keeps everything.
        assert_eq!(greedy_thin(&pool[..50], 0.0).len(), 50);
    }

    #[test]
    fn poisson_select_hits_target_approximately() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let mut rng = StdRng::seed_from_u64(8);
        let pool = sample_interior(&s, 4000, 0.0, &mut rng).unwrap();
        let (pts, spacing) = poisson_select(&pool, 400);
        assert_eq!(pts.len(), 400);
        assert!(spacing > 0.0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(pts[j]) >= spacing - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pool smaller than target")]
    fn poisson_select_pool_too_small_panics() {
        let _ = poisson_select(&[Vec3::ZERO], 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        let a = sample_interior(&s, 50, 0.0, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = sample_interior(&s, 50, 0.0, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
