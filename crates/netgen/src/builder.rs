//! End-to-end network generation with degree calibration.

use ballfit_geom::grid::SpatialGrid;
use ballfit_geom::Vec3;
use ballfit_wsn::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::model::NetworkModel;
use crate::sampler;
use crate::scenario::Scenario;
use crate::GenError;

/// How nodes are placed inside / on the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Pure uniform rejection sampling. Matches a literal reading of the
    /// paper's "randomly uniformly distributed", but a Poisson cloud
    /// contains genuine voids that Unit Ball Fitting correctly reports as
    /// holes — inflating "mistaken" counts against surface-only ground
    /// truth.
    Uniform,
    /// TetGen-like blue noise (default): near-maximal Poisson-disk
    /// selection from a dense uniform pool. Minimum spacing plus
    /// no-large-void coverage mirror the vertex distribution of the
    /// quality tetrahedral mesher the paper generated its networks with.
    BlueNoise,
}

/// Builder for [`NetworkModel`]s.
///
/// Reproduces the paper's generation procedure (Sec. IV-A): sample
/// ground-truth boundary nodes on the model surface, an interior cloud
/// inside it, then choose a radio range so the network is connected with
/// the requested average degree (paper: 18.5 on average, range 5–45).
///
/// # Example
///
/// ```
/// use ballfit_netgen::builder::NetworkBuilder;
/// use ballfit_netgen::scenario::Scenario;
///
/// let model = NetworkBuilder::new(Scenario::SolidBox)
///     .surface_nodes(200)
///     .interior_nodes(300)
///     .target_degree(14.0)
///     .seed(3)
///     .build()
///     .expect("generation succeeds");
/// let stats = model.topology().degree_stats();
/// assert!((stats.mean - 14.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    scenario: Scenario,
    n_surface: usize,
    n_interior: usize,
    seed: u64,
    target_degree: Option<f64>,
    radio_range: Option<f64>,
    surface_shell: f64,
    surface_spacing: f64,
    interior_margin: f64,
    placement: Placement,
    require_connected: bool,
}

impl NetworkBuilder {
    /// Starts a builder for the given scenario with paper-like defaults
    /// (target degree 18.5, connectivity required).
    pub fn new(scenario: Scenario) -> Self {
        NetworkBuilder {
            scenario,
            n_surface: 500,
            n_interior: 1000,
            seed: 0,
            target_degree: Some(18.5),
            radio_range: None,
            surface_shell: 0.25,
            surface_spacing: 0.0,
            interior_margin: 0.35,
            placement: Placement::BlueNoise,
            require_connected: true,
        }
    }

    /// Number of ground-truth boundary nodes to sample on the surface.
    pub fn surface_nodes(mut self, n: usize) -> Self {
        self.n_surface = n;
        self
    }

    /// Number of interior nodes to sample.
    pub fn interior_nodes(mut self, n: usize) -> Self {
        self.n_interior = n;
        self
    }

    /// RNG seed (controls sampling, shuffling, and terrain noise).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Calibrate the radio range to hit this average nodal degree
    /// (mutually exclusive with [`NetworkBuilder::radio_range`]; the last
    /// call wins).
    pub fn target_degree(mut self, degree: f64) -> Self {
        assert!(degree > 0.0, "target degree must be positive");
        self.target_degree = Some(degree);
        self.radio_range = None;
        self
    }

    /// Use a fixed radio range instead of degree calibration.
    pub fn radio_range(mut self, range: f64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        self.radio_range = Some(range);
        self.target_degree = None;
        self
    }

    /// Minimum spacing between surface samples (0 disables thinning).
    pub fn surface_spacing(mut self, spacing: f64) -> Self {
        assert!(spacing >= 0.0, "spacing must be non-negative");
        self.surface_spacing = spacing;
        self
    }

    /// Clearance between interior nodes and the model surface (default
    /// 0.35 radio-range units).
    ///
    /// The paper builds its clouds with TetGen, whose interior mesh
    /// vertices keep roughly one tet-edge of clearance from the surface
    /// facets; without that clearance, interior nodes hugging the surface
    /// legitimately see empty space outside and are reported as
    /// (1-hop-adjacent) "mistaken" boundary nodes. Set to `0.0` for a pure
    /// uniform cloud.
    pub fn interior_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        self.interior_margin = margin;
        self
    }

    /// Node placement style (default: [`Placement::BlueNoise`]).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Whether to fail when the generated network is disconnected
    /// (default: true — the paper considers well-connected networks only).
    pub fn require_connected(mut self, yes: bool) -> Self {
        self.require_connected = yes;
        self
    }

    /// Generates the network.
    ///
    /// # Errors
    ///
    /// * [`GenError::SamplingBudgetExhausted`] — shape too thin or spacing
    ///   too tight for the requested node counts;
    /// * [`GenError::DegreeUnreachable`] — no range in the search bracket
    ///   achieves the target degree;
    /// * [`GenError::Disconnected`] — the final network has more than one
    ///   component and connectivity is required.
    pub fn build(&self) -> Result<NetworkModel, GenError> {
        let sdf = self.scenario.build(self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x5851_F42D_4C95_7F2D));

        let (surface, interior) = match self.placement {
            Placement::Uniform => (
                sampler::sample_surface(
                    &*sdf,
                    self.n_surface,
                    self.surface_shell,
                    self.surface_spacing,
                    &mut rng,
                )?,
                sampler::sample_interior(&*sdf, self.n_interior, self.interior_margin, &mut rng)?,
            ),
            Placement::BlueNoise => {
                // Dense uniform pools, thinned to near-maximal Poisson-disk
                // sets of approximately the requested sizes.
                let pool_factor = 8;
                let surface_pool = sampler::sample_surface(
                    &*sdf,
                    self.n_surface * pool_factor,
                    self.surface_shell,
                    0.0,
                    &mut rng,
                )?;
                let (surface, _) = sampler::poisson_select(&surface_pool, self.n_surface);
                let interior_pool = sampler::sample_interior(
                    &*sdf,
                    self.n_interior * pool_factor,
                    self.interior_margin,
                    &mut rng,
                )?;
                let (interior, _) = sampler::poisson_select(&interior_pool, self.n_interior);
                (surface, interior)
            }
        };

        let mut tagged: Vec<(Vec3, bool)> = surface
            .into_iter()
            .map(|p| (p, true))
            .chain(interior.into_iter().map(|p| (p, false)))
            .collect();
        // Shuffle so node IDs carry no surface/interior signal (ID-based
        // tie-breaks in the pipeline must not be accidentally informed).
        tagged.shuffle(&mut rng);
        let positions: Vec<Vec3> = tagged.iter().map(|&(p, _)| p).collect();
        let is_surface: Vec<bool> = tagged.iter().map(|&(_, s)| s).collect();

        let range = match (self.radio_range, self.target_degree) {
            (Some(r), _) => r,
            (None, Some(target)) => calibrate_range(&positions, target)?,
            (None, None) => unreachable!("builder always has a range or target"),
        };

        let topology = Topology::from_positions(&positions, range);
        if self.require_connected {
            let components = ballfit_wsn::components::components_of(&topology, |_| true).len();
            if components != 1 {
                return Err(GenError::Disconnected { components });
            }
        }
        Ok(NetworkModel::from_parts(
            self.scenario,
            self.seed,
            positions,
            is_surface,
            range,
            topology,
        ))
    }
}

/// Bisection search for the radio range achieving the target average
/// degree. Average degree is monotone non-decreasing in the range, so
/// bisection over `(0, bounding-diagonal]` converges.
fn calibrate_range(positions: &[Vec3], target: f64) -> Result<f64, GenError> {
    assert!(!positions.is_empty(), "cannot calibrate an empty network");
    let bounds = ballfit_geom::Aabb::from_points(positions).expect("non-empty positions");
    let mut lo = 1e-3;
    let mut hi = bounds.extent().norm().max(1e-3);

    let avg_degree = |r: f64| -> f64 {
        let grid = SpatialGrid::build(positions, r.max(1e-6));
        let degrees = grid.adjacency_degrees(positions, r);
        degrees.iter().map(|&d| d as usize).sum::<usize>() as f64 / positions.len() as f64
    };

    if avg_degree(hi) < target {
        return Err(GenError::DegreeUnreachable { target, achieved: avg_degree(hi) });
    }
    let mut best = hi;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let d = avg_degree(mid);
        if (d - target).abs() <= 0.05 * target {
            return Ok(mid);
        }
        if d < target {
            lo = mid;
        } else {
            hi = mid;
            best = mid;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_connected_sphere_network() {
        let model = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(250)
            .interior_nodes(550)
            .target_degree(16.0)
            .seed(11)
            .build()
            .unwrap();
        assert_eq!(model.len(), 800);
        assert_eq!(model.surface_count(), 250);
        assert!(model.topology().is_connected());
        let mean = model.topology().degree_stats().mean;
        assert!((mean - 16.0).abs() < 2.0, "calibrated degree {mean}");
        // Every node is inside-or-on the shape.
        let sdf = model.shape();
        for &p in model.positions() {
            assert!(sdf.distance(p) < 0.05, "node escaped the shape: {p}");
        }
    }

    #[test]
    fn fixed_radio_range_is_respected() {
        let model = NetworkBuilder::new(Scenario::SolidBox)
            .surface_nodes(150)
            .interior_nodes(350)
            .radio_range(1.4)
            .require_connected(false)
            .seed(2)
            .build()
            .unwrap();
        assert_eq!(model.radio_range(), 1.4);
    }

    #[test]
    fn deterministic_in_seed() {
        let mk = |seed| {
            NetworkBuilder::new(Scenario::SolidBox)
                .surface_nodes(100)
                .interior_nodes(200)
                .target_degree(12.0)
                .require_connected(false)
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = mk(5);
        let b = mk(5);
        let c = mk(6);
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.is_surface(), b.is_surface());
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn ground_truth_ids_are_shuffled() {
        let model = NetworkBuilder::new(Scenario::SolidBox)
            .surface_nodes(200)
            .interior_nodes(200)
            .radio_range(1.5)
            .require_connected(false)
            .seed(3)
            .build()
            .unwrap();
        // If surface nodes occupied a contiguous prefix the first 200 flags
        // would all be true; shuffling makes that astronomically unlikely.
        let prefix_true = model.is_surface()[..200].iter().filter(|&&b| b).count();
        assert!(prefix_true < 200, "ground truth not shuffled");
        assert_eq!(model.surface_count(), 200);
    }

    #[test]
    fn unreachable_degree_errors() {
        // 10 nodes cannot reach average degree 50.
        let err = NetworkBuilder::new(Scenario::SolidBox)
            .surface_nodes(5)
            .interior_nodes(5)
            .target_degree(50.0)
            .seed(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, GenError::DegreeUnreachable { .. }), "{err}");
    }

    #[test]
    fn disconnection_detected_at_tiny_range() {
        let err = NetworkBuilder::new(Scenario::SolidSphere)
            .surface_nodes(50)
            .interior_nodes(50)
            .radio_range(0.05)
            .seed(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, GenError::Disconnected { .. }), "{err}");
    }

    #[test]
    fn all_paper_scenarios_generate() {
        for (i, s) in Scenario::PAPER_GALLERY.iter().enumerate() {
            let model = NetworkBuilder::new(*s)
                .surface_nodes(220)
                .interior_nodes(380)
                .target_degree(15.0)
                .require_connected(false)
                .seed(100 + i as u64)
                .build()
                .unwrap_or_else(|e| panic!("scenario {s} failed: {e}"));
            assert_eq!(model.len(), 600);
        }
    }
}
