//! The evaluation scenarios of the paper as SDF solids.
//!
//! Figures 6–10 of the paper evaluate five network shapes; each variant
//! here builds the corresponding solid. Dimensions are in radio-range
//! units (the paper normalizes the transmission range to 1) and are sized
//! so that a few-thousand-node network reaches the paper's density.

use ballfit_geom::sdf::{
    BoxSdf, Difference, PolylineTube, Sdf, SphereSdf, TerrainColumn, TorusSdf,
};
use ballfit_geom::{Aabb, Vec3};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A named network scenario from the paper's evaluation (plus extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Scenario {
    /// Fig. 10: a solid sphere.
    SolidSphere,
    /// Fig. 9: a 3D network in a bended pipe.
    BendedPipe,
    /// Fig. 7: a space network with one interior hole.
    SpaceOneHole,
    /// Fig. 8: a space network with two interior holes.
    SpaceTwoHoles,
    /// Fig. 6: an underwater column with a flat surface and bumpy bottom.
    Underwater,
    /// Extra: a plain solid box (baseline sanity shape).
    SolidBox,
    /// Extra: a solid torus (genus-1 outer boundary).
    Torus,
}

impl Scenario {
    /// All scenarios evaluated in the paper's figure gallery, in figure
    /// order (Figs. 6–10).
    pub const PAPER_GALLERY: [Scenario; 5] = [
        Scenario::Underwater,
        Scenario::SpaceOneHole,
        Scenario::SpaceTwoHoles,
        Scenario::BendedPipe,
        Scenario::SolidSphere,
    ];

    /// Every scenario, paper gallery first, extras last.
    pub const ALL: [Scenario; 7] = [
        Scenario::SolidSphere,
        Scenario::BendedPipe,
        Scenario::SpaceOneHole,
        Scenario::SpaceTwoHoles,
        Scenario::Underwater,
        Scenario::SolidBox,
        Scenario::Torus,
    ];

    /// Looks a scenario up by its [`Scenario::name`] string — the inverse
    /// used by the CLI's `--scenario` flag and the serve wire protocol's
    /// `create` request.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Short machine-friendly name (used in CSV output and file names).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SolidSphere => "sphere",
            Scenario::BendedPipe => "bended_pipe",
            Scenario::SpaceOneHole => "one_hole",
            Scenario::SpaceTwoHoles => "two_holes",
            Scenario::Underwater => "underwater",
            Scenario::SolidBox => "box",
            Scenario::Torus => "torus",
        }
    }

    /// Number of distinct boundaries (outer + holes) the shape has; the
    /// grouping step should discover exactly this many components.
    pub fn expected_boundaries(&self) -> usize {
        match self {
            Scenario::SpaceOneHole => 2,
            Scenario::SpaceTwoHoles => 3,
            _ => 1,
        }
    }

    /// Builds the solid, with terrain noise (underwater bottom) seeded by
    /// `seed` so scenario geometry is reproducible per experiment.
    pub fn build(&self, seed: u64) -> Box<dyn Sdf> {
        match self {
            Scenario::SolidSphere => Box::new(SphereSdf::new(Vec3::ZERO, 4.0)),
            Scenario::SolidBox => Box::new(BoxSdf::new(Aabb::cube(Vec3::ZERO, 4.0))),
            Scenario::Torus => Box::new(TorusSdf::new(Vec3::ZERO, Vec3::Z, 5.0, 2.0)),
            Scenario::BendedPipe => {
                // A 90° elbow: quarter-circle arc of radius 6 sampled as a
                // polyline, tube radius 1.6.
                let mut pts = Vec::new();
                let r = 6.0;
                let steps = 16;
                for i in 0..=steps {
                    let t = i as f64 / steps as f64 * std::f64::consts::FRAC_PI_2;
                    pts.push(Vec3::new(r * t.cos(), r * t.sin(), 0.0));
                }
                Box::new(PolylineTube::new(pts, 1.6))
            }
            Scenario::SpaceOneHole => {
                // 12×12×9 slab with a spherical void of radius 2 at center
                // (≥ 2.5 radio ranges of wall between the hole boundary and
                // the outer boundary, so the two boundary groups cannot be
                // bridged by boundary-adjacent nodes).
                let slab =
                    BoxSdf::new(Aabb::new(Vec3::new(-6.0, -6.0, -4.5), Vec3::new(6.0, 6.0, 4.5)));
                let hole = SphereSdf::new(Vec3::ZERO, 2.0);
                Box::new(Difference::new(Box::new(slab), Box::new(hole)))
            }
            Scenario::SpaceTwoHoles => {
                let slab =
                    BoxSdf::new(Aabb::new(Vec3::new(-7.0, -6.0, -4.5), Vec3::new(7.0, 6.0, 4.5)));
                let holes = ballfit_geom::sdf::Union::new(vec![
                    Box::new(SphereSdf::new(Vec3::new(-3.4, 0.0, 0.0), 1.8)) as Box<dyn Sdf>,
                    Box::new(SphereSdf::new(Vec3::new(3.4, 0.5, 0.3), 1.8)) as Box<dyn Sdf>,
                ]);
                Box::new(Difference::new(Box::new(slab), Box::new(holes)))
            }
            Scenario::Underwater => Box::new(TerrainColumn::new(
                0.0, 14.0, // x extent
                0.0, 10.0, // y extent
                5.0,  // water surface
                0.0,  // mean bottom
                1.2,  // bump amplitude
                0.35, // bump frequency
                seed,
            )),
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_have_nonempty_interiors() {
        for s in [
            Scenario::SolidSphere,
            Scenario::BendedPipe,
            Scenario::SpaceOneHole,
            Scenario::SpaceTwoHoles,
            Scenario::Underwater,
            Scenario::SolidBox,
            Scenario::Torus,
        ] {
            let sdf = s.build(1);
            let b = sdf.bounds();
            // Probe a coarse lattice for at least one interior point.
            let mut found = false;
            let steps = 20;
            'outer: for i in 0..=steps {
                for j in 0..=steps {
                    for k in 0..=steps {
                        let p = Vec3::new(
                            b.min.x + b.extent().x * i as f64 / steps as f64,
                            b.min.y + b.extent().y * j as f64 / steps as f64,
                            b.min.z + b.extent().z * k as f64 / steps as f64,
                        );
                        if sdf.contains(p) {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
            assert!(found, "scenario {s} has an empty interior");
        }
    }

    #[test]
    fn hole_scenarios_have_voids() {
        let one = Scenario::SpaceOneHole.build(0);
        assert!(!one.contains(Vec3::ZERO));
        assert!(one.contains(Vec3::new(4.0, 4.0, 0.0)));

        let two = Scenario::SpaceTwoHoles.build(0);
        assert!(!two.contains(Vec3::new(-3.2, 0.0, 0.0)));
        assert!(!two.contains(Vec3::new(3.2, 0.5, 0.3)));
        assert!(two.contains(Vec3::new(0.0, -4.0, 0.0)));
    }

    #[test]
    fn names_and_boundary_counts() {
        assert_eq!(Scenario::SolidSphere.name(), "sphere");
        assert_eq!(Scenario::SolidSphere.to_string(), "sphere");
        assert_eq!(Scenario::SpaceOneHole.expected_boundaries(), 2);
        assert_eq!(Scenario::SpaceTwoHoles.expected_boundaries(), 3);
        assert_eq!(Scenario::Underwater.expected_boundaries(), 1);
        assert_eq!(Scenario::PAPER_GALLERY.len(), 5);
    }

    #[test]
    fn by_name_inverts_name_for_every_scenario() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::by_name(s.name()), Some(s));
        }
        assert_eq!(Scenario::by_name("klein_bottle"), None);
    }

    #[test]
    fn underwater_geometry_is_seed_dependent_but_reproducible() {
        let a = Scenario::Underwater.build(1);
        let b = Scenario::Underwater.build(1);
        let c = Scenario::Underwater.build(2);
        let p = Vec3::new(7.0, 5.0, 0.9);
        assert_eq!(a.distance(p), b.distance(p));
        // Different seeds displace the bottom differently (almost surely).
        assert_ne!(a.distance(p), c.distance(p));
    }
}
