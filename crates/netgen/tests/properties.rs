//! Property-based tests for the scenario generator.

use ballfit_geom::sdf::Sdf;
use ballfit_netgen::measure::{DistanceOracle, ErrorModel};
use ballfit_netgen::sampler::{sample_interior, sample_surface};
use ballfit_netgen::scenario::Scenario;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interior samples are strictly inside; surface samples are within
    /// the shell of the zero level set — for every scenario and seed.
    #[test]
    fn samples_respect_the_shape(scenario_idx in 0usize..5, seed in 0u64..50) {
        let scenario = Scenario::PAPER_GALLERY[scenario_idx];
        let sdf = scenario.build(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let interior = sample_interior(&*sdf, 40, 0.0, &mut rng).unwrap();
        for p in &interior {
            prop_assert!(sdf.distance(*p) < 0.0, "{}: interior point escaped", scenario);
        }
        let surface = sample_surface(&*sdf, 30, 0.25, 0.0, &mut rng).unwrap();
        for p in &surface {
            prop_assert!(
                sdf.distance(*p).abs() < 0.05,
                "{}: surface point off-surface by {}",
                scenario,
                sdf.distance(*p)
            );
        }
    }

    /// The uniform error model stays within its band and the oracle is
    /// symmetric for arbitrary pairs.
    #[test]
    fn oracle_band_and_symmetry(
        i in 0usize..5000,
        j in 0usize..5000,
        d in 0.0f64..2.0,
        fraction in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let oracle = DistanceOracle::new(
            ErrorModel::UniformRadius { fraction },
            1.0,
            seed,
        );
        let m1 = oracle.measure(i, j, d);
        let m2 = oracle.measure(j, i, d);
        prop_assert_eq!(m1, m2, "oracle asymmetric");
        prop_assert!(m1 >= 0.0);
        prop_assert!(m1 >= (d - fraction) - 1e-12, "below band: {} vs {}±{}", m1, d, fraction);
        prop_assert!(m1 <= d + fraction + 1e-12, "above band: {} vs {}±{}", m1, d, fraction);
    }

    /// Proportional errors scale with the true distance.
    #[test]
    fn proportional_band(d in 0.01f64..5.0, fraction in 0.0f64..0.9, seed in 0u64..50) {
        let oracle = DistanceOracle::new(ErrorModel::Proportional { fraction }, 1.0, seed);
        let m = oracle.measure(1, 2, d);
        prop_assert!(m >= d * (1.0 - fraction) - 1e-12);
        prop_assert!(m <= d * (1.0 + fraction) + 1e-12);
    }
}
