//! Property-based tests for the geometry substrate.

use ballfit_geom::mesh::TriMesh;
use ballfit_geom::sdf::{BoxSdf, Difference, Sdf, SphereSdf, Union};
use ballfit_geom::sphere::balls_through_three_points;
use ballfit_geom::{grid::SpatialGrid, Aabb, Tetrahedron, Triangle, Vec3};
use proptest::prelude::*;

fn vec3_in(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    /// Balls through three points touch all three points at exactly radius r,
    /// and two-solution cases are mirror images across the triangle plane.
    #[test]
    fn balls_touch_their_defining_points(
        a in vec3_in(0.8),
        b in vec3_in(0.8),
        c in vec3_in(0.8),
    ) {
        let r = 1.0;
        let balls = balls_through_three_points(a, b, c, r);
        prop_assert!(balls.len() <= 2);
        for ball in &balls {
            for p in [a, b, c] {
                prop_assert!(
                    (ball.center.distance(p) - r).abs() < 1e-7,
                    "center {} point {} dist {}", ball.center, p, ball.center.distance(p)
                );
            }
        }
        if balls.len() == 2 {
            // Midpoint of the two centers is the triangle circumcenter,
            // which lies in the triangle plane.
            let tri = Triangle::new(a, b, c);
            if let (Some(o), Some(n)) = (tri.circumcenter(), tri.normal()) {
                let mid = (balls[0].center + balls[1].center) * 0.5;
                prop_assert!(mid.distance(o) < 1e-6);
                let sep = (balls[0].center - balls[1].center).normalized();
                prop_assert!(sep.cross(n).norm() < 1e-6, "centers separate along the normal");
            }
        }
    }

    /// The existence condition is exactly circumradius <= r.
    #[test]
    fn ball_existence_matches_circumradius(
        a in vec3_in(1.5),
        b in vec3_in(1.5),
        c in vec3_in(1.5),
    ) {
        let r = 1.0;
        let tri = Triangle::new(a, b, c);
        let balls = balls_through_three_points(a, b, c, r);
        match tri.circumradius() {
            None => prop_assert!(balls.is_empty()),
            Some(cr) => {
                if cr < r - 1e-6 {
                    prop_assert_eq!(balls.len(), 2);
                } else if cr > r + 1e-6 {
                    prop_assert!(balls.is_empty());
                }
                // near-tangent cases may legitimately give 0, 1 or 2
            }
        }
    }

    /// Triangle circumcenter is equidistant from the three vertices.
    #[test]
    fn circumcenter_equidistance(
        a in vec3_in(5.0),
        b in vec3_in(5.0),
        c in vec3_in(5.0),
    ) {
        if let Some(o) = Triangle::new(a, b, c).circumcenter() {
            let ra = o.distance(a);
            prop_assert!((o.distance(b) - ra).abs() < 1e-5 * (1.0 + ra));
            prop_assert!((o.distance(c) - ra).abs() < 1e-5 * (1.0 + ra));
        }
    }

    /// Tetrahedron circumsphere touches all four vertices.
    #[test]
    fn tetra_circumsphere(
        a in vec3_in(2.0),
        b in vec3_in(2.0),
        c in vec3_in(2.0),
        d in vec3_in(2.0),
    ) {
        let t = Tetrahedron::new(a, b, c, d);
        if t.volume() > 1e-3 {
            let s = t.circumsphere().expect("non-degenerate tetra has circumsphere");
            for p in [a, b, c, d] {
                prop_assert!(s.touches(p, 1e-5 * (1.0 + s.radius)));
            }
        }
    }

    /// Grid adjacency equals brute-force adjacency.
    #[test]
    fn grid_matches_bruteforce(
        pts in proptest::collection::vec(vec3_in(2.5), 1..120),
        radius in 0.2f64..1.5,
    ) {
        let grid = SpatialGrid::build(&pts, 1.0);
        let fast = grid.adjacency(&pts, radius);
        let r2 = radius * radius;
        for i in 0..pts.len() {
            let mut brute: Vec<usize> = (0..pts.len())
                .filter(|&j| j != i && pts[i].distance_squared(pts[j]) <= r2)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(&fast[i], &brute);
        }
    }

    /// CSG identities: union contains parts' interiors; difference never
    /// contains the cut's interior.
    #[test]
    fn csg_membership_laws(p in vec3_in(3.0)) {
        let s1 = SphereSdf::new(Vec3::ZERO, 1.0);
        let s2 = SphereSdf::new(Vec3::new(1.5, 0.0, 0.0), 1.0);
        let union = Union::new(vec![Box::new(s1), Box::new(s2)]);
        prop_assert_eq!(union.contains(p), s1.contains(p) || s2.contains(p));

        let b = BoxSdf::new(Aabb::cube(Vec3::ZERO, 2.0));
        let diff = Difference::new(Box::new(b), Box::new(s1));
        if diff.contains(p) {
            prop_assert!(b.contains(p));
            prop_assert!(s1.distance(p) >= 0.0);
        }
    }

    /// SDF bounds are conservative: inside ⇒ in bounding box.
    #[test]
    fn bounds_are_conservative(p in vec3_in(4.0)) {
        let shapes: Vec<Box<dyn Sdf>> = vec![
            Box::new(SphereSdf::new(Vec3::new(0.5, -0.5, 0.0), 1.2)),
            Box::new(BoxSdf::new(Aabb::cube(Vec3::new(-1.0, 0.0, 1.0), 0.8))),
        ];
        for s in &shapes {
            if s.contains(p) {
                prop_assert!(s.bounds().contains(p));
            }
        }
    }

    /// Sphere projection lands on the surface from any start point.
    #[test]
    fn projection_converges_for_sphere(p in vec3_in(5.0)) {
        let s = SphereSdf::new(Vec3::new(0.3, 0.3, -0.2), 1.5);
        if p.distance(s.center) > 1e-3 {
            let q = s.project_to_surface(p, 30);
            prop_assert!(s.distance(q).abs() < 1e-6);
        }
    }

    /// Euler characteristic of a fan triangulation around a vertex is 1
    /// (topological disk).
    #[test]
    fn fan_euler_characteristic(n in 3usize..20) {
        let mut verts = vec![Vec3::ZERO];
        for i in 0..n {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            verts.push(Vec3::new(t.cos(), t.sin(), 0.0));
        }
        let faces: Vec<[usize; 3]> =
            (0..n - 1).map(|i| [0, i + 1, i + 2]).collect();
        let mesh = TriMesh::new(verts, faces).unwrap();
        prop_assert_eq!(mesh.euler_characteristic(), 1);
        let audit = mesh.audit();
        prop_assert_eq!(audit.non_manifold_edges, 0);
        prop_assert!(audit.border_edges > 0);
    }
}
