//! Signed-distance shape algebra.
//!
//! The paper builds its test networks with TetGen and "a set of 3D graphic
//! tools"; this module is the from-scratch replacement. A [`Sdf`] describes
//! a solid: `distance(p) < 0` inside, `> 0` outside, `≈ 0` on the surface.
//! CSG combinators ([`Union`], [`Intersection`], [`Difference`]) and the
//! primitives below compose into every scenario of the evaluation
//! (underwater column, space networks with interior holes, bended pipe,
//! sphere).
//!
//! Distances returned by combined shapes are *bounds* (they may
//! underestimate the true distance) — the standard CSG caveat — which is
//! sufficient for inside tests, shell rejection sampling and iterative
//! surface projection as used by `ballfit-netgen`.

use std::fmt::Debug;

use crate::noise::ValueNoise3;
use crate::{Aabb, Vec3};

/// A solid described by a signed distance (or distance bound) function.
pub trait Sdf: Debug + Send + Sync {
    /// Signed distance bound at `p`: negative inside, positive outside.
    fn distance(&self, p: Vec3) -> f64;

    /// A conservative axis-aligned bounding box of the solid.
    fn bounds(&self) -> Aabb;

    /// Returns `true` if `p` is inside the solid.
    fn contains(&self, p: Vec3) -> bool {
        self.distance(p) < 0.0
    }

    /// Numerical gradient of the distance field (central differences).
    fn gradient(&self, p: Vec3) -> Vec3 {
        let h = 1e-5;
        Vec3::new(
            self.distance(p + Vec3::X * h) - self.distance(p - Vec3::X * h),
            self.distance(p + Vec3::Y * h) - self.distance(p - Vec3::Y * h),
            self.distance(p + Vec3::Z * h) - self.distance(p - Vec3::Z * h),
        ) / (2.0 * h)
    }

    /// Newton-projects `p` toward the zero level set. Returns the projected
    /// point; convergence is approximate for non-exact distance bounds.
    fn project_to_surface(&self, p: Vec3, iterations: usize) -> Vec3 {
        let mut q = p;
        for _ in 0..iterations {
            let d = self.distance(q);
            if d.abs() < 1e-9 {
                break;
            }
            let g = self.gradient(q);
            let g2 = g.norm_squared();
            if g2 < 1e-12 {
                break;
            }
            q -= g * (d / g2);
        }
        q
    }
}

impl<S: Sdf + ?Sized> Sdf for &S {
    fn distance(&self, p: Vec3) -> f64 {
        (**self).distance(p)
    }
    fn bounds(&self) -> Aabb {
        (**self).bounds()
    }
}

impl<S: Sdf + ?Sized> Sdf for Box<S> {
    fn distance(&self, p: Vec3) -> f64 {
        (**self).distance(p)
    }
    fn bounds(&self) -> Aabb {
        (**self).bounds()
    }
}

/// A solid ball.
#[derive(Debug, Clone, Copy)]
pub struct SphereSdf {
    /// Center of the ball.
    pub center: Vec3,
    /// Radius of the ball.
    pub radius: f64,
}

impl SphereSdf {
    /// Creates a solid ball.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0`.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive");
        SphereSdf { center, radius }
    }
}

impl Sdf for SphereSdf {
    fn distance(&self, p: Vec3) -> f64 {
        p.distance(self.center) - self.radius
    }
    fn bounds(&self) -> Aabb {
        Aabb::cube(self.center, self.radius)
    }
}

/// An axis-aligned solid box (exact SDF).
#[derive(Debug, Clone, Copy)]
pub struct BoxSdf {
    /// The box region.
    pub aabb: Aabb,
}

impl BoxSdf {
    /// Creates a solid box from an [`Aabb`].
    pub fn new(aabb: Aabb) -> Self {
        BoxSdf { aabb }
    }
}

impl Sdf for BoxSdf {
    fn distance(&self, p: Vec3) -> f64 {
        let c = self.aabb.center();
        let half = self.aabb.extent() * 0.5;
        let q = (p - c).abs() - half;
        let outside = q.max(Vec3::ZERO).norm();
        let inside = q.max_component().min(0.0);
        outside + inside
    }
    fn bounds(&self) -> Aabb {
        self.aabb
    }
}

/// A solid torus around an axis through `center` with direction `axis`
/// (exact SDF for the canonical axis; general axes via frame rotation).
#[derive(Debug, Clone, Copy)]
pub struct TorusSdf {
    /// Center of the torus.
    pub center: Vec3,
    /// Unit axis of revolution.
    pub axis: Vec3,
    /// Major radius (center of tube circle).
    pub major: f64,
    /// Minor (tube) radius.
    pub minor: f64,
}

impl TorusSdf {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if radii are non-positive or `minor >= major`.
    pub fn new(center: Vec3, axis: Vec3, major: f64, minor: f64) -> Self {
        assert!(major > 0.0 && minor > 0.0, "torus radii must be positive");
        assert!(minor < major, "tube radius must be smaller than major radius");
        TorusSdf { center, axis: axis.normalized(), major, minor }
    }
}

impl Sdf for TorusSdf {
    fn distance(&self, p: Vec3) -> f64 {
        let rel = p - self.center;
        let along = rel.dot(self.axis);
        let radial = (rel - self.axis * along).norm();
        let q = Vec3::new(radial - self.major, along, 0.0);
        q.norm() - self.minor
    }
    fn bounds(&self) -> Aabb {
        let r = self.major + self.minor;
        Aabb::cube(self.center, r)
    }
}

/// A round-capped tube following a polyline (exact SDF): the union of
/// capsules over consecutive points. Used for the paper's "bended pipe".
#[derive(Debug, Clone)]
pub struct PolylineTube {
    points: Vec<Vec3>,
    radius: f64,
}

impl PolylineTube {
    /// Creates a tube of the given `radius` along `points`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or `radius <= 0`.
    pub fn new(points: Vec<Vec3>, radius: f64) -> Self {
        assert!(points.len() >= 2, "a tube needs at least two points");
        assert!(radius > 0.0, "tube radius must be positive");
        PolylineTube { points, radius }
    }

    /// The polyline backbone.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Tube radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    fn segment_distance(p: Vec3, a: Vec3, b: Vec3) -> f64 {
        let ab = b - a;
        let t = ((p - a).dot(ab) / ab.norm_squared()).clamp(0.0, 1.0);
        p.distance(a + ab * t)
    }
}

impl Sdf for PolylineTube {
    fn distance(&self, p: Vec3) -> f64 {
        let mut best = f64::INFINITY;
        for w in self.points.windows(2) {
            best = best.min(Self::segment_distance(p, w[0], w[1]));
        }
        best - self.radius
    }
    fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points).expect("tube has points").inflated(self.radius)
    }
}

/// Union of solids (distance = min; a distance bound).
#[derive(Debug)]
pub struct Union {
    parts: Vec<Box<dyn Sdf>>,
}

impl Union {
    /// Creates the union of the given solids.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Sdf>>) -> Self {
        assert!(!parts.is_empty(), "union of zero solids");
        Union { parts }
    }
}

impl Sdf for Union {
    fn distance(&self, p: Vec3) -> f64 {
        self.parts.iter().map(|s| s.distance(p)).fold(f64::INFINITY, f64::min)
    }
    fn bounds(&self) -> Aabb {
        self.parts
            .iter()
            .map(|s| s.bounds())
            .reduce(|a, b| a.union(&b))
            .expect("union is non-empty")
    }
}

/// Intersection of solids (distance = max; a distance bound).
#[derive(Debug)]
pub struct Intersection {
    parts: Vec<Box<dyn Sdf>>,
}

impl Intersection {
    /// Creates the intersection of the given solids.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Sdf>>) -> Self {
        assert!(!parts.is_empty(), "intersection of zero solids");
        Intersection { parts }
    }
}

impl Sdf for Intersection {
    fn distance(&self, p: Vec3) -> f64 {
        self.parts.iter().map(|s| s.distance(p)).fold(f64::NEG_INFINITY, f64::max)
    }
    fn bounds(&self) -> Aabb {
        // Conservative: bounds of the first part (a superset of the result).
        self.parts[0].bounds()
    }
}

/// Difference `base \ cut` (distance = max(d_base, −d_cut); a bound).
///
/// This is how the "space network with interior holes" scenarios carve
/// their holes.
#[derive(Debug)]
pub struct Difference {
    base: Box<dyn Sdf>,
    cut: Box<dyn Sdf>,
}

impl Difference {
    /// Creates `base` minus `cut`.
    pub fn new(base: Box<dyn Sdf>, cut: Box<dyn Sdf>) -> Self {
        Difference { base, cut }
    }
}

impl Sdf for Difference {
    fn distance(&self, p: Vec3) -> f64 {
        self.base.distance(p).max(-self.cut.distance(p))
    }
    fn bounds(&self) -> Aabb {
        self.base.bounds()
    }
}

/// A terrain-bounded column: the underwater scenario of Fig. 6. The solid is
/// the water body between a flat surface plane `z = z_surface` and a bumpy
/// bottom `z = bottom(x, y)` produced by fractal value noise, clipped to a
/// rectangular footprint.
#[derive(Debug, Clone)]
pub struct TerrainColumn {
    footprint_min: Vec3,
    footprint_max: Vec3,
    z_surface: f64,
    z_bottom: f64,
    amplitude: f64,
    frequency: f64,
    noise: ValueNoise3,
}

impl TerrainColumn {
    /// Creates a column over the rectangle `[x0, x1] × [y0, y1]` with the
    /// water surface at `z_surface` and the mean bottom at `z_bottom`,
    /// displaced by `± amplitude` noise at the given `frequency`.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is inverted or if
    /// `z_bottom + amplitude >= z_surface` (no water would remain).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        x0: f64,
        x1: f64,
        y0: f64,
        y1: f64,
        z_surface: f64,
        z_bottom: f64,
        amplitude: f64,
        frequency: f64,
        seed: u64,
    ) -> Self {
        assert!(x0 < x1 && y0 < y1, "inverted footprint");
        assert!(amplitude >= 0.0 && frequency > 0.0, "invalid terrain parameters");
        assert!(z_bottom + amplitude < z_surface, "terrain would breach the water surface");
        TerrainColumn {
            footprint_min: Vec3::new(x0, y0, 0.0),
            footprint_max: Vec3::new(x1, y1, 0.0),
            z_surface,
            z_bottom,
            amplitude,
            frequency,
            noise: ValueNoise3::new(seed),
        }
    }

    /// The bottom height at `(x, y)`.
    pub fn bottom_height(&self, x: f64, y: f64) -> f64 {
        self.z_bottom
            + self.amplitude * self.noise.fbm(x * self.frequency, y * self.frequency, 0.0, 3, 0.5)
    }
}

impl Sdf for TerrainColumn {
    fn distance(&self, p: Vec3) -> f64 {
        let lateral = (self.footprint_min.x - p.x)
            .max(p.x - self.footprint_max.x)
            .max(self.footprint_min.y - p.y)
            .max(p.y - self.footprint_max.y);
        let vertical = (p.z - self.z_surface).max(self.bottom_height(p.x, p.y) - p.z);
        lateral.max(vertical)
    }
    fn bounds(&self) -> Aabb {
        Aabb::new(
            Vec3::new(self.footprint_min.x, self.footprint_min.y, self.z_bottom - self.amplitude),
            Vec3::new(self.footprint_max.x, self.footprint_max.y, self.z_surface),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_sdf_values() {
        let s = SphereSdf::new(Vec3::ZERO, 2.0);
        assert_eq!(s.distance(Vec3::ZERO), -2.0);
        assert_eq!(s.distance(Vec3::new(3.0, 0.0, 0.0)), 1.0);
        assert!(s.contains(Vec3::X));
        assert!(!s.contains(Vec3::new(2.5, 0.0, 0.0)));
        assert!(s.bounds().contains(Vec3::new(2.0, 0.0, 0.0)));
    }

    #[test]
    fn box_sdf_exactness() {
        let b = BoxSdf::new(Aabb::cube(Vec3::ZERO, 1.0));
        assert_eq!(b.distance(Vec3::ZERO), -1.0);
        assert_eq!(b.distance(Vec3::new(2.0, 0.0, 0.0)), 1.0);
        // Corner distance is Euclidean.
        let d = b.distance(Vec3::new(2.0, 2.0, 2.0));
        assert!((d - 3f64.sqrt()).abs() < 1e-12);
        assert!(b.contains(Vec3::new(0.99, 0.99, 0.99)));
    }

    #[test]
    fn torus_sdf() {
        let t = TorusSdf::new(Vec3::ZERO, Vec3::Z, 2.0, 0.5);
        // On the tube circle: inside by 0.5.
        assert!((t.distance(Vec3::new(2.0, 0.0, 0.0)) + 0.5).abs() < 1e-12);
        // Center of the hole: outside.
        assert!(t.distance(Vec3::ZERO) > 0.0);
        assert!((t.distance(Vec3::ZERO) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tube radius must be smaller")]
    fn degenerate_torus_panics() {
        let _ = TorusSdf::new(Vec3::ZERO, Vec3::Z, 1.0, 1.0);
    }

    #[test]
    fn tube_sdf() {
        let tube = PolylineTube::new(vec![Vec3::ZERO, Vec3::new(4.0, 0.0, 0.0)], 1.0);
        assert!((tube.distance(Vec3::new(2.0, 0.0, 0.0)) + 1.0).abs() < 1e-12);
        assert!((tube.distance(Vec3::new(2.0, 2.0, 0.0)) - 1.0).abs() < 1e-12);
        // Round cap.
        assert!((tube.distance(Vec3::new(-2.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!(tube.bounds().contains(Vec3::new(5.0, 1.0, 1.0)));
    }

    #[test]
    fn csg_union_difference() {
        let a = Box::new(SphereSdf::new(Vec3::ZERO, 1.0));
        let b = Box::new(SphereSdf::new(Vec3::new(3.0, 0.0, 0.0), 1.0));
        let u = Union::new(vec![a, b]);
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::new(3.0, 0.0, 0.0)));
        assert!(!u.contains(Vec3::new(1.5, 0.0, 0.0)));
        assert!(u.bounds().contains(Vec3::new(4.0, 0.0, 0.0)));

        let hole = Difference::new(
            Box::new(BoxSdf::new(Aabb::cube(Vec3::ZERO, 2.0))),
            Box::new(SphereSdf::new(Vec3::ZERO, 1.0)),
        );
        assert!(!hole.contains(Vec3::ZERO)); // carved out
        assert!(hole.contains(Vec3::new(1.5, 0.0, 0.0))); // in box, outside hole
        assert!(!hole.contains(Vec3::new(3.0, 0.0, 0.0))); // outside box
    }

    #[test]
    fn csg_intersection() {
        let a = Box::new(SphereSdf::new(Vec3::ZERO, 1.0));
        let b = Box::new(SphereSdf::new(Vec3::new(1.0, 0.0, 0.0), 1.0));
        let i = Intersection::new(vec![a, b]);
        assert!(i.contains(Vec3::new(0.5, 0.0, 0.0)));
        assert!(!i.contains(Vec3::ZERO)); // on b's surface, not inside
        assert!(!i.contains(Vec3::new(-0.5, 0.0, 0.0)));
    }

    #[test]
    fn gradient_points_outward() {
        let s = SphereSdf::new(Vec3::ZERO, 1.0);
        let g = s.gradient(Vec3::new(2.0, 0.0, 0.0));
        assert!((g - Vec3::X).norm() < 1e-4);
    }

    #[test]
    fn projection_lands_on_surface() {
        let s = SphereSdf::new(Vec3::new(0.5, -0.5, 1.0), 2.0);
        for start in [Vec3::ZERO, Vec3::new(5.0, 5.0, 5.0), Vec3::new(0.6, -0.4, 1.1)] {
            let q = s.project_to_surface(start, 20);
            assert!(s.distance(q).abs() < 1e-6, "projection failed from {start}");
        }
    }

    #[test]
    fn terrain_column_contains_water_only() {
        let t = TerrainColumn::new(0.0, 10.0, 0.0, 10.0, 5.0, 0.0, 1.0, 0.3, 42);
        assert!(t.contains(Vec3::new(5.0, 5.0, 3.0)));
        assert!(!t.contains(Vec3::new(5.0, 5.0, 6.0))); // above surface
        assert!(!t.contains(Vec3::new(5.0, 5.0, -2.0))); // below bottom
        assert!(!t.contains(Vec3::new(-1.0, 5.0, 3.0))); // outside footprint
        let h = t.bottom_height(5.0, 5.0);
        assert!((-1.0..=1.0).contains(&h));
        assert!(t.bounds().contains(Vec3::new(5.0, 5.0, 3.0)));
    }

    #[test]
    #[should_panic(expected = "breach")]
    fn terrain_breach_panics() {
        let _ = TerrainColumn::new(0.0, 1.0, 0.0, 1.0, 1.0, 0.5, 1.0, 1.0, 0);
    }
}
