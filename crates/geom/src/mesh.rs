//! Indexed triangle meshes with incidence auditing.
//!
//! The surface-construction pipeline (Sec. III of the paper) produces a
//! triangular mesh over the landmark nodes and claims it is a *locally
//! planarized 2-manifold*: every edge borders at most two triangular faces,
//! and on a closed boundary exactly two. [`TriMesh`] stores the mesh and
//! provides the audits used to verify those claims: edge–face incidence,
//! Euler characteristic, genus, connected components and manifoldness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::{Triangle, Vec3};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// An undirected mesh edge, stored with `lo <= hi`.
pub type Edge = (usize, usize);

/// Normalizes an edge to `lo <= hi` form.
#[inline]
pub fn edge(a: usize, b: usize) -> Edge {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An indexed triangle mesh.
///
/// # Example
///
/// ```
/// use ballfit_geom::{mesh::TriMesh, Vec3};
/// // A tetrahedron surface: closed 2-manifold with Euler characteristic 2.
/// let mesh = TriMesh::new(
///     vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
///     vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
/// ).unwrap();
/// assert!(mesh.audit().is_closed_manifold());
/// assert_eq!(mesh.euler_characteristic(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TriMesh {
    vertices: Vec<Vec3>,
    faces: Vec<[usize; 3]>,
}

/// Result of a manifoldness audit of a [`TriMesh`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MeshAudit {
    /// Total number of distinct undirected edges.
    pub edges: usize,
    /// Edges bordering exactly one face (surface boundary).
    pub border_edges: usize,
    /// Edges bordering exactly two faces (manifold interior).
    pub manifold_edges: usize,
    /// Edges bordering three or more faces (non-manifold).
    pub non_manifold_edges: usize,
    /// Number of duplicate faces (same vertex set appearing twice).
    pub duplicate_faces: usize,
}

impl MeshAudit {
    /// `true` if every edge borders exactly two faces and the mesh has at
    /// least one face — a closed 2-manifold (the paper's target property).
    pub fn is_closed_manifold(&self) -> bool {
        self.edges > 0
            && self.border_edges == 0
            && self.non_manifold_edges == 0
            && self.duplicate_faces == 0
    }

    /// Fraction of edges that are manifold (2-face); `1.0` for a perfect
    /// closed surface. Returns 1.0 for an edgeless mesh.
    pub fn manifold_fraction(&self) -> f64 {
        if self.edges == 0 {
            1.0
        } else {
            self.manifold_edges as f64 / self.edges as f64
        }
    }
}

/// Errors from [`TriMesh::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A face references a vertex index `>= vertices.len()`.
    IndexOutOfRange {
        /// Offending face index.
        face: usize,
        /// Offending vertex index.
        index: usize,
    },
    /// A face repeats a vertex (degenerate).
    DegenerateFace {
        /// Offending face index.
        face: usize,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::IndexOutOfRange { face, index } => {
                write!(f, "face {face} references out-of-range vertex {index}")
            }
            MeshError::DegenerateFace { face } => {
                write!(f, "face {face} repeats a vertex")
            }
        }
    }
}

impl std::error::Error for MeshError {}

impl TriMesh {
    /// Creates a mesh, validating that all face indices are in range and no
    /// face repeats a vertex.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError`] on invalid faces.
    pub fn new(vertices: Vec<Vec3>, faces: Vec<[usize; 3]>) -> Result<Self, MeshError> {
        for (fi, f) in faces.iter().enumerate() {
            for &v in f {
                if v >= vertices.len() {
                    return Err(MeshError::IndexOutOfRange { face: fi, index: v });
                }
            }
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(MeshError::DegenerateFace { face: fi });
            }
        }
        Ok(TriMesh { vertices, faces })
    }

    /// An empty mesh.
    pub fn empty() -> Self {
        TriMesh { vertices: Vec::new(), faces: Vec::new() }
    }

    /// Vertex positions.
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    /// Faces as vertex-index triples.
    pub fn faces(&self) -> &[[usize; 3]] {
        &self.faces
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of faces.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Geometry of face `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= face_count()`.
    pub fn face_triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.faces[i];
        Triangle::new(self.vertices[a], self.vertices[b], self.vertices[c])
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        (0..self.faces.len()).map(|i| self.face_triangle(i).area()).sum()
    }

    /// Map from each undirected edge to the faces incident on it,
    /// deterministically ordered.
    pub fn edge_faces(&self) -> BTreeMap<Edge, Vec<usize>> {
        let mut map: BTreeMap<Edge, Vec<usize>> = BTreeMap::new();
        for (fi, f) in self.faces.iter().enumerate() {
            for (a, b) in [(f[0], f[1]), (f[1], f[2]), (f[0], f[2])] {
                map.entry(edge(a, b)).or_default().push(fi);
            }
        }
        map
    }

    /// Distinct undirected edges.
    pub fn edges(&self) -> Vec<Edge> {
        self.edge_faces().keys().copied().collect()
    }

    /// Number of distinct undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_faces().len()
    }

    /// Runs the manifoldness audit.
    pub fn audit(&self) -> MeshAudit {
        let ef = self.edge_faces();
        let mut audit = MeshAudit { edges: ef.len(), ..MeshAudit::default() };
        for faces in ef.values() {
            match faces.len() {
                1 => audit.border_edges += 1,
                2 => audit.manifold_edges += 1,
                _ => audit.non_manifold_edges += 1,
            }
        }
        let mut seen: BTreeSet<[usize; 3]> = BTreeSet::new();
        for f in &self.faces {
            let mut key = *f;
            key.sort_unstable();
            if !seen.insert(key) {
                audit.duplicate_faces += 1;
            }
        }
        audit
    }

    /// Euler characteristic `V − E + F`, counting only vertices referenced
    /// by at least one face (landmark meshes may carry unused vertices).
    pub fn euler_characteristic(&self) -> i64 {
        let used: BTreeSet<usize> = self.faces.iter().flatten().copied().collect();
        used.len() as i64 - self.edge_count() as i64 + self.face_count() as i64
    }

    /// Genus of a closed connected orientable surface: `(2 − χ) / 2`.
    ///
    /// Returns `None` if the mesh is not a closed manifold or not connected,
    /// in which case genus is undefined.
    pub fn genus(&self) -> Option<i64> {
        if !self.audit().is_closed_manifold() || self.face_components().len() != 1 {
            return None;
        }
        Some((2 - self.euler_characteristic()) / 2)
    }

    /// Connected components of faces (two faces are adjacent when they
    /// share an edge). Each component is a sorted list of face indices.
    pub fn face_components(&self) -> Vec<Vec<usize>> {
        let ef = self.edge_faces();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.faces.len()];
        for faces in ef.values() {
            for i in 0..faces.len() {
                for j in (i + 1)..faces.len() {
                    adj[faces[i]].push(faces[j]);
                    adj[faces[j]].push(faces[i]);
                }
            }
        }
        let mut seen = vec![false; self.faces.len()];
        let mut components = Vec::new();
        for start in 0..self.faces.len() {
            if seen[start] {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(f) = queue.pop_front() {
                comp.push(f);
                for &g in &adj[f] {
                    if !seen[g] {
                        seen[g] = true;
                        queue.push_back(g);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Returns a copy with unreferenced vertices removed and face indices
    /// remapped accordingly.
    pub fn compacted(&self) -> TriMesh {
        let used: BTreeSet<usize> = self.faces.iter().flatten().copied().collect();
        let remap: BTreeMap<usize, usize> =
            used.iter().enumerate().map(|(new, &old)| (old, new)).collect();
        let vertices = used.iter().map(|&i| self.vertices[i]).collect();
        let faces = self.faces.iter().map(|f| [remap[&f[0]], remap[&f[1]], remap[&f[2]]]).collect();
        TriMesh { vertices, faces }
    }

    /// Distance from `p` to the closest point on any face (brute force
    /// over faces; landmark meshes have at most a few hundred).
    ///
    /// Returns `None` when the mesh has no faces.
    pub fn distance_to_point(&self, p: Vec3) -> Option<f64> {
        (0..self.faces.len())
            .map(|f| self.face_triangle(f).distance_to_point(p))
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.min(d))))
    }

    /// Mean distance of the vertices to a reference surface given as a
    /// signed-distance function (absolute value of the SDF). Used to
    /// quantify how far a constructed boundary mesh deviates from the true
    /// model surface. Returns 0.0 for a vertex-less mesh.
    pub fn mean_abs_distance_to<S: crate::sdf::Sdf + ?Sized>(&self, surface: &S) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        let total: f64 = self.vertices.iter().map(|&v| surface.distance(v).abs()).sum();
        total / self.vertices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tetra() -> TriMesh {
        TriMesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
            vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
        )
        .unwrap()
    }

    /// Octahedron: 6 vertices, 8 faces, closed manifold, χ = 2.
    fn octa() -> TriMesh {
        let v = vec![Vec3::X, -Vec3::X, Vec3::Y, -Vec3::Y, Vec3::Z, -Vec3::Z];
        let f = vec![
            [0, 2, 4],
            [2, 1, 4],
            [1, 3, 4],
            [3, 0, 4],
            [2, 0, 5],
            [1, 2, 5],
            [3, 1, 5],
            [0, 3, 5],
        ];
        TriMesh::new(v, f).unwrap()
    }

    #[test]
    fn validation_errors() {
        let verts = vec![Vec3::ZERO, Vec3::X, Vec3::Y];
        assert!(matches!(
            TriMesh::new(verts.clone(), vec![[0, 1, 5]]),
            Err(MeshError::IndexOutOfRange { face: 0, index: 5 })
        ));
        assert!(matches!(
            TriMesh::new(verts, vec![[0, 1, 1]]),
            Err(MeshError::DegenerateFace { face: 0 })
        ));
        let e = MeshError::DegenerateFace { face: 3 };
        assert!(e.to_string().contains("face 3"));
    }

    #[test]
    fn tetra_is_closed_manifold() {
        let m = tetra();
        let audit = m.audit();
        assert!(audit.is_closed_manifold());
        assert_eq!(audit.edges, 6);
        assert_eq!(audit.manifold_edges, 6);
        assert_eq!(m.euler_characteristic(), 2);
        assert_eq!(m.genus(), Some(0));
        assert_eq!(m.face_components().len(), 1);
        assert!((audit.manifold_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn octa_is_closed_manifold_genus_zero() {
        let m = octa();
        assert!(m.audit().is_closed_manifold());
        assert_eq!(m.edge_count(), 12);
        assert_eq!(m.euler_characteristic(), 2);
        assert_eq!(m.genus(), Some(0));
        // Octahedron with unit axis vertices: area = 8 · (√3/2) ≈ 6.928? No:
        // each face is an equilateral triangle with side √2, area √3/2.
        assert!((m.area() - 8.0 * 3f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn open_mesh_has_border_edges() {
        let m = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]).unwrap();
        let audit = m.audit();
        assert!(!audit.is_closed_manifold());
        assert_eq!(audit.border_edges, 3);
        assert_eq!(m.genus(), None);
    }

    #[test]
    fn non_manifold_edge_detected() {
        // Three triangles sharing edge (0,1) — the exact situation the
        // paper's edge-flip step must remove.
        let m = TriMesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.0, -1.0, 0.0)],
            vec![[0, 1, 2], [0, 1, 3], [0, 1, 4]],
        )
        .unwrap();
        let audit = m.audit();
        assert_eq!(audit.non_manifold_edges, 1);
        assert!(!audit.is_closed_manifold());
    }

    #[test]
    fn duplicate_faces_detected() {
        let m =
            TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2], [2, 0, 1]]).unwrap();
        assert_eq!(m.audit().duplicate_faces, 1);
    }

    #[test]
    fn components_of_two_tetrahedra() {
        let mut v = tetra().vertices().to_vec();
        let offset = Vec3::new(10.0, 0.0, 0.0);
        v.extend(tetra().vertices().iter().map(|&p| p + offset));
        let mut f = tetra().faces().to_vec();
        f.extend(tetra().faces().iter().map(|t| [t[0] + 4, t[1] + 4, t[2] + 4]));
        let m = TriMesh::new(v, f).unwrap();
        assert_eq!(m.face_components().len(), 2);
        // χ of a disjoint union of two spheres is 4.
        assert_eq!(m.euler_characteristic(), 4);
        assert_eq!(m.genus(), None); // not connected
    }

    #[test]
    fn compaction_drops_unused_vertices() {
        let m = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::splat(9.0)], vec![[0, 1, 2]])
            .unwrap();
        let c = m.compacted();
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.face_count(), 1);
        assert_eq!(c.faces()[0], [0, 1, 2]);
        assert_eq!(c.euler_characteristic(), m.euler_characteristic());
    }

    #[test]
    fn mean_distance_to_sphere_surface() {
        use crate::sdf::SphereSdf;
        let m = octa();
        let s = SphereSdf::new(Vec3::ZERO, 1.0);
        // All octahedron vertices lie exactly on the unit sphere.
        assert!(m.mean_abs_distance_to(&s) < 1e-12);
        let s2 = SphereSdf::new(Vec3::ZERO, 2.0);
        assert!((m.mean_abs_distance_to(&s2) - 1.0).abs() < 1e-12);
        assert_eq!(TriMesh::empty().mean_abs_distance_to(&s), 0.0);
    }

    #[test]
    fn point_to_mesh_distance() {
        let m = tetra();
        // On a face: zero.
        assert!(m.distance_to_point(Vec3::new(0.3, 0.3, 0.0)).unwrap() < 1e-12);
        // Off the xy-face by 1... closest face may be a slanted one; at
        // least it is ≤ 1 and > 0.
        let d = m.distance_to_point(Vec3::new(0.25, 0.25, -1.0)).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        assert!(TriMesh::empty().distance_to_point(Vec3::ZERO).is_none());
    }

    #[test]
    fn edge_helpers() {
        assert_eq!(edge(3, 1), (1, 3));
        assert_eq!(edge(1, 3), (1, 3));
        let m = tetra();
        assert_eq!(m.edges().len(), 6);
        assert_eq!(m.edge_faces()[&(0, 1)].len(), 2);
        let t = m.face_triangle(0);
        assert!(t.area() > 0.0);
    }
}
