//! Tolerance-based geometric predicates.
//!
//! The ballfit pipeline works with measured, noisy coordinates, so exact
//! arithmetic buys nothing; instead every predicate takes (or defaults to)
//! an absolute tolerance calibrated to the normalized radio range of 1.

use crate::{Vec3, EPS};

/// Signed volume ×6 of the tetrahedron `(a, b, c, d)`.
///
/// Positive when `d` lies on the side of plane `(a, b, c)` pointed to by the
/// right-handed normal `(b − a) × (c − a)`.
#[inline]
pub fn orient3d(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a)
}

/// Returns `true` if the three points are collinear within tolerance `tol`
/// (interpreted as an area threshold: twice the triangle area must be ≤ tol).
#[inline]
pub fn collinear(a: Vec3, b: Vec3, c: Vec3, tol: f64) -> bool {
    (b - a).cross(c - a).norm() <= tol
}

/// Returns `true` if four points are coplanar within tolerance `tol`
/// (interpreted as a ×6-volume threshold).
#[inline]
pub fn coplanar(a: Vec3, b: Vec3, c: Vec3, d: Vec3, tol: f64) -> bool {
    orient3d(a, b, c, d).abs() <= tol
}

/// Returns `true` if `p` lies strictly inside the ball of radius `r`
/// centered at `center`, using `tol` as a shrink margin.
///
/// The margin makes nodes *on* the ball surface (the three defining nodes of
/// a unit ball in UBF) reliably test as *not inside* despite rounding.
#[inline]
pub fn strictly_inside_ball(p: Vec3, center: Vec3, r: f64, tol: f64) -> bool {
    p.distance_squared(center) < (r - tol) * (r - tol)
}

/// Relative-tolerance float comparison used throughout the test-suites.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Default-tolerance variant of [`collinear`].
#[inline]
pub fn collinear_default(a: Vec3, b: Vec3, c: Vec3) -> bool {
    collinear(a, b, c, EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient3d_signs() {
        let a = Vec3::ZERO;
        let b = Vec3::X;
        let c = Vec3::Y;
        assert!(orient3d(a, b, c, Vec3::Z) > 0.0);
        assert!(orient3d(a, b, c, -Vec3::Z) < 0.0);
        assert_eq!(orient3d(a, b, c, Vec3::new(0.3, 0.3, 0.0)), 0.0);
    }

    #[test]
    fn orient3d_magnitude_is_six_volumes() {
        // Unit right tetrahedron: volume 1/6, so orient3d = 1.
        let v = orient3d(Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z);
        assert!((v - 1.0).abs() < 1e-15);
    }

    #[test]
    fn collinearity() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 1.0, 1.0);
        let c = Vec3::new(2.0, 2.0, 2.0);
        assert!(collinear(a, b, c, EPS));
        assert!(collinear_default(a, b, c));
        assert!(!collinear(a, b, Vec3::new(2.0, 2.0, 2.1), EPS));
        // Tolerance is an area threshold: a sliver passes with loose tol.
        assert!(collinear(a, Vec3::X, Vec3::new(2.0, 1e-6, 0.0), 1e-3));
    }

    #[test]
    fn coplanarity() {
        let a = Vec3::ZERO;
        let b = Vec3::X;
        let c = Vec3::Y;
        assert!(coplanar(a, b, c, Vec3::new(0.7, -0.3, 0.0), EPS));
        assert!(!coplanar(a, b, c, Vec3::new(0.0, 0.0, 0.01), EPS));
    }

    #[test]
    fn ball_membership_margins() {
        let c = Vec3::ZERO;
        assert!(strictly_inside_ball(Vec3::new(0.5, 0.0, 0.0), c, 1.0, 1e-9));
        // A point exactly on the surface is not "inside".
        assert!(!strictly_inside_ball(Vec3::X, c, 1.0, 1e-9));
        // A point just inside the margin is not "inside" either.
        assert!(!strictly_inside_ball(Vec3::new(1.0 - 1e-12, 0.0, 0.0), c, 1.0, 1e-9));
        assert!(!strictly_inside_ball(Vec3::new(2.0, 0.0, 0.0), c, 1.0, 1e-9));
    }

    #[test]
    fn approx_eq_scales() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
