//! # ballfit-geom
//!
//! 3D geometry substrate for the `ballfit` reproduction of *"Localized
//! Algorithm for Precise Boundary Detection in 3D Wireless Networks"*
//! (ICDCS 2010).
//!
//! This crate provides everything the boundary-detection pipeline and the
//! scenario generator need from computational geometry, implemented from
//! scratch:
//!
//! * [`Vec3`] — double-precision 3D vectors with the usual algebra.
//! * [`Sphere`] and [`sphere::balls_through_three_points`] — the geometric
//!   heart of the paper's Unit Ball Fitting test: the (zero, one or two)
//!   balls of a fixed radius whose surface passes through three given points.
//! * [`Triangle`] / [`Tetrahedron`] — circumcenters, areas, volumes and
//!   degeneracy predicates.
//! * [`Aabb`] — axis-aligned bounding boxes.
//! * [`grid::SpatialGrid`] — a uniform spatial hash used to build radio
//!   adjacency in `O(n)` instead of `O(n²)`.
//! * [`sdf`] — a signed-distance-function shape algebra (primitives + CSG +
//!   noise displacement) used by `ballfit-netgen` to replace the paper's
//!   TetGen-generated models.
//! * [`noise::ValueNoise3`] — seeded, smooth 3D value noise for the
//!   "bumpy ocean bottom" underwater scenario.
//! * [`mesh::TriMesh`] — an indexed triangle mesh with edge–face incidence,
//!   manifold auditing, Euler characteristic and connected components, used
//!   to validate the constructed boundary surfaces.
//! * [`io`] — Wavefront OBJ / PLY export for visual inspection.
//!
//! # Example
//!
//! ```
//! use ballfit_geom::{Vec3, sphere::balls_through_three_points};
//!
//! // Three points on the unit circle in the z = 0 plane admit exactly two
//! // unit balls through them: centered at (0, 0, ±h).
//! let a = Vec3::new(0.9, 0.0, 0.0);
//! let b = Vec3::new(-0.9, 0.0, 0.0);
//! let c = Vec3::new(0.0, 0.9, 0.0);
//! let balls = balls_through_three_points(a, b, c, 1.0);
//! assert_eq!(balls.len(), 2);
//! for ball in &balls {
//!     assert!((ball.center.distance(a) - 1.0).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod grid;
pub mod io;
pub mod mesh;
pub mod noise;
pub mod predicates;
pub mod sdf;
pub mod sphere;
pub mod svg;
pub mod tetrahedron;
pub mod triangle;
pub mod vec3;

pub use aabb::Aabb;
pub use sphere::Sphere;
pub use tetrahedron::Tetrahedron;
pub use triangle::Triangle;
pub use vec3::Vec3;

/// Default absolute tolerance used by the geometric predicates in this crate.
///
/// Coordinates in the ballfit pipeline are normalized to a radio range of 1,
/// and networks span a few tens of units, so `1e-9` comfortably separates
/// true degeneracies from rounding noise.
pub const EPS: f64 = 1e-9;
