//! Double-precision 3D vectors and points.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A 3D vector (also used as a point) with `f64` components.
///
/// # Example
///
/// ```
/// use ballfit_geom::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.norm(), 3.0);
/// assert_eq!(v.normalized().norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The unit X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// The unit Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// The unit Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).norm_squared()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (near) zero; use
    /// [`Vec3::try_normalized`] for a fallible version.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Returns the unit vector in this direction, or `None` if the norm is
    /// below `tol`.
    #[inline]
    pub fn try_normalized(self, tol: f64) -> Option<Vec3> {
        let n = self.norm();
        if n <= tol {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns an arbitrary unit vector orthogonal to `self`.
    ///
    /// Useful for constructing local frames. The input need not be
    /// normalized but must be non-zero.
    pub fn any_orthonormal(self) -> Vec3 {
        // Pick the axis least aligned with self to avoid degeneracy.
        let axis = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::X
        } else if self.y.abs() <= self.z.abs() {
            Vec3::Y
        } else {
            Vec3::Z
        };
        self.cross(axis).normalized()
    }

    /// Projects `self` onto the (not necessarily unit) direction `dir`.
    #[inline]
    pub fn project_onto(self, dir: Vec3) -> Vec3 {
        dir * (self.dot(dir) / dir.norm_squared())
    }

    /// The component of `self` orthogonal to `dir`.
    #[inline]
    pub fn reject_from(self, dir: Vec3) -> Vec3 {
        self - self.project_onto(dir)
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    #[inline]
    fn from(t: (f64, f64, f64)) -> Self {
        Vec3::new(t.0, t.1, t.2)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes the components 0 → x, 1 → y, 2 → z.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

/// Returns the centroid (arithmetic mean) of a non-empty set of points.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn centroid(points: &[Vec3]) -> Vec3 {
    assert!(!points.is_empty(), "centroid of an empty point set");
    points.iter().copied().sum::<Vec3>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::X;
        v -= Vec3::Y;
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 0.0, 1.5));
    }

    #[test]
    fn cross_is_orthogonal_and_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        let a = Vec3::new(1.3, -0.2, 2.0);
        let b = Vec3::new(0.4, 0.9, -1.1);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.distance(Vec3::ZERO), 5.0);
        assert_eq!(v.distance_squared(Vec3::ZERO), 25.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn try_normalized_zero_is_none() {
        assert!(Vec3::ZERO.try_normalized(1e-12).is_none());
        assert!(Vec3::X.try_normalized(1e-12).is_some());
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.0, 5.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -2.0, -1.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -2.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn any_orthonormal_is_orthogonal_unit() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -2.0, 0.7)] {
            let o = v.any_orthonormal();
            assert!(o.dot(v).abs() < 1e-12);
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_and_rejection_decompose() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let d = Vec3::new(0.0, 1.0, 1.0);
        let p = v.project_onto(d);
        let r = v.reject_from(d);
        assert!((p + r - v).norm() < 1e-12);
        assert!(r.dot(d).abs() < 1e-12);
    }

    #[test]
    fn conversions_and_indexing() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from((4.0, 5.0, 6.0)), Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_and_centroid() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 2.0, 2.0), Vec3::new(4.0, -2.0, 1.0)];
        let s: Vec3 = pts.iter().copied().sum();
        assert_eq!(s, Vec3::new(6.0, 0.0, 3.0));
        assert_eq!(centroid(&pts), Vec3::new(2.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_empty_panics() {
        centroid(&[]);
    }

    #[test]
    fn display_and_finite() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_string(), "(1, 2, 3)");
        assert!(Vec3::X.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
    }
}
