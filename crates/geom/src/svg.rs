//! Minimal SVG rendering of 3D point clouds and meshes.
//!
//! The paper's figures are renders of networks, boundary nodes and
//! constructed meshes. This module produces comparable 2D images with an
//! orthographic projection — enough to eyeball a reproduction without any
//! external tooling. Depth is conveyed by painter's-order sorting and
//! per-element opacity.

use std::io::{self, Write};

use crate::mesh::TriMesh;
use crate::Vec3;

/// An orthographic camera: projects 3D points onto the plane orthogonal
/// to `view`, with `up` fixing the roll.
#[derive(Debug, Clone, Copy)]
pub struct OrthoCamera {
    right: Vec3,
    up: Vec3,
    view: Vec3,
}

impl OrthoCamera {
    /// Creates a camera looking along `view` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `view` is (near) zero or parallel to `up_hint`.
    pub fn new(view: Vec3, up_hint: Vec3) -> Self {
        let view = view.normalized();
        let right = up_hint.cross(view).try_normalized(1e-9).expect("view parallel to up");
        let up = view.cross(right);
        OrthoCamera { right, up, view }
    }

    /// A pleasant default isometric-ish viewpoint.
    pub fn isometric() -> Self {
        OrthoCamera::new(Vec3::new(1.0, 0.8, 0.6), Vec3::Z)
    }

    /// Projects a point to `(x, y, depth)` in camera coordinates.
    #[inline]
    pub fn project(&self, p: Vec3) -> (f64, f64, f64) {
        (p.dot(self.right), p.dot(self.up), p.dot(self.view))
    }
}

/// A renderable scene of styled points and mesh wireframes.
#[derive(Debug, Default)]
pub struct SvgScene {
    points: Vec<(Vec3, &'static str, f64)>,
    meshes: Vec<(TriMesh, &'static str)>,
}

impl SvgScene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        SvgScene::default()
    }

    /// Adds points with a CSS color and pixel radius.
    pub fn add_points(&mut self, points: &[Vec3], color: &'static str, radius: f64) -> &mut Self {
        self.points.extend(points.iter().map(|&p| (p, color, radius)));
        self
    }

    /// Adds a mesh drawn as a wireframe of the given color.
    pub fn add_mesh(&mut self, mesh: &TriMesh, color: &'static str) -> &mut Self {
        self.meshes.push((mesh.clone(), color));
        self
    }

    /// Renders the scene to SVG with the given camera and canvas width
    /// (height follows the content aspect ratio).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn render<W: Write>(&self, mut w: W, camera: &OrthoCamera, width: f64) -> io::Result<()> {
        // Project everything, collect bounds.
        let mut projected_pts: Vec<(f64, f64, f64, &str, f64)> = self
            .points
            .iter()
            .map(|&(p, color, r)| {
                let (x, y, z) = camera.project(p);
                (x, y, z, color, r)
            })
            .collect();
        let mut segments: Vec<(f64, f64, f64, f64, f64, &str)> = Vec::new();
        for (mesh, color) in &self.meshes {
            for (a, b) in mesh.edges() {
                let (x1, y1, z1) = camera.project(mesh.vertices()[a]);
                let (x2, y2, z2) = camera.project(mesh.vertices()[b]);
                segments.push((x1, y1, x2, y2, 0.5 * (z1 + z2), color));
            }
        }
        let xs = projected_pts.iter().map(|p| p.0).chain(segments.iter().flat_map(|s| [s.0, s.2]));
        let ys = projected_pts.iter().map(|p| p.1).chain(segments.iter().flat_map(|s| [s.1, s.3]));
        let (min_x, max_x) = bounds(xs);
        let (min_y, max_y) = bounds(ys);
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        let scale = width / span_x;
        let height = span_y * scale;
        let pad = 10.0;
        let map = |x: f64, y: f64| -> (f64, f64) {
            ((x - min_x) * scale + pad, height - (y - min_y) * scale + pad)
        };

        writeln!(
            w,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            width + 2.0 * pad,
            height + 2.0 * pad,
            width + 2.0 * pad,
            height + 2.0 * pad
        )?;
        writeln!(w, r#"<rect width="100%" height="100%" fill="white"/>"#)?;

        // Painter's order: far first.
        segments.sort_by(|a, b| a.4.total_cmp(&b.4));
        for &(x1, y1, x2, y2, _, color) in &segments {
            let (ax, ay) = map(x1, y1);
            let (bx, by) = map(x2, y2);
            writeln!(
                w,
                r#"<line x1="{ax:.1}" y1="{ay:.1}" x2="{bx:.1}" y2="{by:.1}" stroke="{color}" stroke-width="0.8" stroke-opacity="0.6"/>"#
            )?;
        }
        projected_pts.sort_by(|a, b| a.2.total_cmp(&b.2));
        for &(x, y, _, color, r) in &projected_pts {
            let (cx, cy) = map(x, y);
            writeln!(
                w,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{color}" fill-opacity="0.7"/>"#
            )?;
        }
        writeln!(w, "</svg>")
    }
}

fn bounds<I: Iterator<Item = f64>>(values: I) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_axes_are_orthonormal() {
        let cam = OrthoCamera::isometric();
        let (x, y, z) = cam.project(Vec3::ZERO);
        assert_eq!((x, y, z), (0.0, 0.0, 0.0));
        // Projection preserves distances along camera axes.
        let (rx, ry, _) = cam.project(cam.right);
        assert!((rx - 1.0).abs() < 1e-12 && ry.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn degenerate_camera_panics() {
        let _ = OrthoCamera::new(Vec3::Z, Vec3::Z);
    }

    #[test]
    fn renders_points_and_mesh() {
        let mesh = TriMesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
            vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]],
        )
        .unwrap();
        let mut scene = SvgScene::new();
        scene.add_points(&[Vec3::splat(0.5), Vec3::splat(0.2)], "red", 2.0);
        scene.add_mesh(&mesh, "steelblue");
        let mut buf = Vec::new();
        scene.render(&mut buf, &OrthoCamera::isometric(), 400.0).unwrap();
        let svg = String::from_utf8(buf).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<line").count(), 6); // tetra edges
        assert!(svg.contains("steelblue"));
    }

    #[test]
    fn empty_scene_is_valid_svg() {
        let scene = SvgScene::new();
        let mut buf = Vec::new();
        scene.render(&mut buf, &OrthoCamera::isometric(), 100.0).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("</svg>"));
    }
}
