//! Spheres and the fixed-radius ball construction at the heart of
//! Unit Ball Fitting (UBF).

use crate::{Triangle, Vec3, EPS};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A sphere (ball) with a center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Sphere {
    /// Center of the sphere.
    pub center: Vec3,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid sphere radius: {radius}");
        Sphere { center, radius }
    }

    /// Returns `true` if `p` lies strictly inside the sphere, with a shrink
    /// margin `tol` (points within `tol` of the surface count as outside).
    #[inline]
    pub fn strictly_contains(&self, p: Vec3, tol: f64) -> bool {
        crate::predicates::strictly_inside_ball(p, self.center, self.radius, tol)
    }

    /// Returns `true` if `p` lies on the sphere surface within `tol`.
    #[inline]
    pub fn touches(&self, p: Vec3, tol: f64) -> bool {
        (p.distance(self.center) - self.radius).abs() <= tol
    }

    /// Signed distance from `p` to the sphere surface (negative inside).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        p.distance(self.center) - self.radius
    }

    /// Volume of the ball.
    #[inline]
    pub fn volume(&self) -> f64 {
        (4.0 / 3.0) * std::f64::consts::PI * self.radius.powi(3)
    }
}

/// Computes the balls of radius `r` whose surface passes through the three
/// points `a`, `b`, `c` — the construction of Eq. (1) in the paper.
///
/// Geometrically: the centers are the circumcenter of the triangle offset
/// along ± its plane normal by `sqrt(r² − R²)`, where `R` is the
/// circumradius.
///
/// Returns:
/// * an empty vector when the triangle is degenerate or `R > r`
///   (no such ball exists),
/// * one ball when `R ≈ r` (the two mirror solutions coincide),
/// * two mirror-image balls otherwise.
///
/// # Example
///
/// ```
/// use ballfit_geom::{Vec3, sphere::balls_through_three_points};
/// let balls = balls_through_three_points(
///     Vec3::new(0.5, 0.0, 0.0),
///     Vec3::new(-0.5, 0.0, 0.0),
///     Vec3::new(0.0, 0.5, 0.0),
///     1.0,
/// );
/// assert_eq!(balls.len(), 2);
/// ```
pub fn balls_through_three_points(a: Vec3, b: Vec3, c: Vec3, r: f64) -> Vec<Sphere> {
    assert!(r.is_finite() && r > 0.0, "ball radius must be positive: {r}");
    let tri = Triangle::new(a, b, c);
    let (center, normal) = match (tri.circumcenter(), tri.normal()) {
        (Some(o), Some(n)) => (o, n),
        _ => return Vec::new(),
    };
    let circum_r2 = center.distance_squared(a);
    let h2 = r * r - circum_r2;
    if h2 < -EPS {
        return Vec::new();
    }
    if h2 <= EPS {
        // Tangent case: single ball with its center in the triangle plane.
        return vec![Sphere::new(center, r)];
    }
    let h = h2.sqrt();
    vec![Sphere::new(center + normal * h, r), Sphere::new(center - normal * h, r)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_membership() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        assert!(s.strictly_contains(Vec3::new(0.5, 0.0, 0.0), 1e-9));
        assert!(!s.strictly_contains(Vec3::X, 1e-9));
        assert!(s.touches(Vec3::X, 1e-9));
        assert!(!s.touches(Vec3::new(0.9, 0.0, 0.0), 1e-9));
        assert!((s.signed_distance(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((s.volume() - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid sphere radius")]
    fn negative_radius_panics() {
        let _ = Sphere::new(Vec3::ZERO, -1.0);
    }

    #[test]
    fn two_mirror_balls() {
        let a = Vec3::new(0.5, 0.0, 0.0);
        let b = Vec3::new(-0.5, 0.0, 0.0);
        let c = Vec3::new(0.0, 0.5, 0.0);
        let balls = balls_through_three_points(a, b, c, 1.0);
        assert_eq!(balls.len(), 2);
        for ball in &balls {
            for p in [a, b, c] {
                assert!(ball.touches(p, 1e-9), "ball must touch all three points");
            }
        }
        // Mirror symmetry across the z = 0 plane.
        assert!((balls[0].center.z + balls[1].center.z).abs() < 1e-12);
        assert!(balls[0].center.z.abs() > 0.1);
    }

    #[test]
    fn no_ball_when_circumradius_exceeds_r() {
        // Circumradius of this triangle is 2 > 1 → no unit ball through it.
        let a = Vec3::new(2.0, 0.0, 0.0);
        let b = Vec3::new(-2.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 2.0, 0.0);
        assert!(balls_through_three_points(a, b, c, 1.0).is_empty());
    }

    #[test]
    fn tangent_case_single_ball() {
        // Equatorial triangle: circumradius exactly r → one ball centered in plane.
        let r = 1.0;
        let a = Vec3::new(r, 0.0, 0.0);
        let b = Vec3::new(-r, 0.0, 0.0);
        let c = Vec3::new(0.0, r, 0.0);
        let balls = balls_through_three_points(a, b, c, r);
        assert_eq!(balls.len(), 1);
        assert!(balls[0].center.norm() < 1e-6);
    }

    #[test]
    fn degenerate_triangle_yields_nothing() {
        let a = Vec3::ZERO;
        let b = Vec3::X;
        let c = Vec3::new(2.0, 0.0, 0.0);
        assert!(balls_through_three_points(a, b, c, 1.0).is_empty());
    }

    #[test]
    fn works_in_arbitrary_orientation() {
        // Rotate/translate a known configuration and verify touch invariants.
        let base =
            [Vec3::new(0.3, 0.1, 0.0), Vec3::new(-0.2, 0.4, 0.1), Vec3::new(0.0, -0.3, 0.35)];
        let shift = Vec3::new(10.0, -5.0, 2.5);
        let pts: Vec<Vec3> = base.iter().map(|&p| p + shift).collect();
        let balls = balls_through_three_points(pts[0], pts[1], pts[2], 1.0);
        assert_eq!(balls.len(), 2);
        for ball in &balls {
            for &p in &pts {
                assert!(ball.touches(p, 1e-9));
            }
        }
    }
}
