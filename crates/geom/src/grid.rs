//! Uniform spatial hash grid for fixed-radius neighbor queries.
//!
//! Building radio adjacency for an `n`-node network naively costs `O(n²)`
//! distance checks; the paper's networks have thousands of nodes and the
//! experiment harness sweeps many of them, so the generator bins points into
//! cells of side `cell_size` and only inspects the 27 neighboring cells.
//!
//! Two adjacency builders are provided: [`SpatialGrid::adjacency`] returns
//! per-node `Vec`s (the historical shape, kept as the reference for
//! equality pins), and [`SpatialGrid::adjacency_csr`] emits a flat CSR
//! (offsets + neighbor arena) in two counting passes with no per-node or
//! transient pair allocation — the million-node path, where peak RSS is
//! essentially the size of the finished arena.

use std::collections::BTreeMap;

use crate::Vec3;

/// Cell coordinates are clamped to `±KEY_CLAMP` before the `i64` cast.
///
/// Without the clamp, a coordinate like `1e300` saturates the float→int
/// cast to `i64::MAX` and the `±reach` cell-scan offsets overflow (a panic
/// under debug assertions, silent wraparound in release — neighbors could
/// be looked up in the wrong cell). Clamping is monotone and shifts any
/// in-range pair of cell coordinates by at most their true separation, so
/// the `±reach` scan still covers every candidate pair: points beyond the
/// clamp collapse into the boundary cells, where the exact distance test
/// keeps results correct (merely scanning more candidates). At `2^40`
/// cells the clamp is far outside every generated scene, so normal-scale
/// behavior is bit-identical.
const KEY_CLAMP: f64 = (1i64 << 40) as f64;

/// A uniform spatial hash over a set of points, supporting radius queries.
///
/// # Example
///
/// ```
/// use ballfit_geom::{grid::SpatialGrid, Vec3};
/// let pts = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(3.0, 0.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let mut near = grid.neighbors_within(&pts, 0, 1.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_size: f64,
    // BTreeMap rather than HashMap: `adjacency` iterates the cells, and
    // deterministic cell order keeps whole-pipeline runs bit-reproducible.
    cells: BTreeMap<(i64, i64, i64), Vec<usize>>,
    // The reach-1 half-neighborhood scan offsets (14 entries), hoisted
    // out of the adjacency builders: every radius-≤-cell_size adjacency
    // call — the hot path, since `Topology::from_positions` builds grids
    // with `cell_size == range` — reuses this vector instead of
    // reallocating it per invocation.
    half_offsets_r1: Vec<(i64, i64, i64)>,
}

/// Half-neighborhood cell offsets for a given reach: the origin plus every
/// offset lexicographically greater than it, so a cell-pair scan visits
/// each unordered pair exactly once.
fn half_offsets(reach: i64) -> Vec<(i64, i64, i64)> {
    let mut o = Vec::new();
    for dx in -reach..=reach {
        for dy in -reach..=reach {
            for dz in -reach..=reach {
                if (dx, dy, dz) >= (0, 0, 0) {
                    o.push((dx, dy, dz));
                }
            }
        }
    }
    o
}

impl SpatialGrid {
    /// Builds a grid over `points` with the given `cell_size`.
    ///
    /// For radius-`r` queries, `cell_size >= r` gives the classic
    /// 27-cell scan; smaller cells also work but scan more cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(points: &[Vec3], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive: {cell_size}"
        );
        let mut cells: BTreeMap<(i64, i64, i64), Vec<usize>> = BTreeMap::new();
        for (i, &p) in points.iter().enumerate() {
            cells.entry(Self::key(p, cell_size)).or_default().push(i);
        }
        SpatialGrid { cell_size, cells, half_offsets_r1: half_offsets(1) }
    }

    #[inline]
    fn cell_coord(x: f64, cell: f64) -> i64 {
        // NaN clamps to NaN and casts to 0 — same cell NaN always hashed to.
        (x / cell).floor().clamp(-KEY_CLAMP, KEY_CLAMP) as i64
    }

    #[inline]
    fn key(p: Vec3, cell: f64) -> (i64, i64, i64) {
        (Self::cell_coord(p.x, cell), Self::cell_coord(p.y, cell), Self::cell_coord(p.z, cell))
    }

    /// The hoisted offset table when it covers `reach`, else a fresh one.
    fn offsets_for(&self, reach: i64) -> std::borrow::Cow<'_, [(i64, i64, i64)]> {
        if reach <= 1 {
            std::borrow::Cow::Borrowed(&self.half_offsets_r1)
        } else {
            std::borrow::Cow::Owned(half_offsets(reach))
        }
    }

    #[inline]
    fn reach_for(&self, radius: f64) -> i64 {
        // The clamp keeps a pathological radius/cell ratio from producing
        // a reach the ±offset arithmetic could overflow on; past the key
        // clamp every cell is within reach anyway.
        (radius / self.cell_size).ceil().clamp(0.0, 2.0 * KEY_CLAMP) as i64
    }

    /// Cell side length this grid was built with.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Inserts point-index `i`, located at `p`, into the grid. The caller
    /// is responsible for keeping the backing `points` slice consistent
    /// (`points[i] == p` whenever a query runs) and for not inserting the
    /// same index twice.
    ///
    /// Together with [`SpatialGrid::remove`] this supports dynamic point
    /// sets (network churn): membership changes cost one bucket update
    /// instead of an `O(n)` rebuild.
    pub fn insert(&mut self, i: usize, p: Vec3) {
        self.cells.entry(Self::key(p, self.cell_size)).or_default().push(i);
    }

    /// Removes point-index `i` from the grid, where `p` is the position it
    /// was inserted under (the cell is derived from `p`, so it must be the
    /// same value — not a later position).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not present in the cell of `p`.
    pub fn remove(&mut self, i: usize, p: Vec3) {
        let key = Self::key(p, self.cell_size);
        let bucket = self.cells.get_mut(&key).expect("SpatialGrid::remove: cell is empty");
        let at = bucket.iter().position(|&x| x == i).expect("SpatialGrid::remove: index in cell");
        bucket.remove(at);
        if bucket.is_empty() {
            self.cells.remove(&key);
        }
    }

    /// Indices of all points within distance `radius` of `points[query]`,
    /// excluding `query` itself. `points` must be the same slice the grid
    /// was built from.
    pub fn neighbors_within(&self, points: &[Vec3], query: usize, radius: f64) -> Vec<usize> {
        let center = points[query];
        let mut out = self.points_within(points, center, radius);
        out.retain(|&i| i != query);
        out
    }

    /// Indices of all points within distance `radius` of an arbitrary
    /// location `center`.
    pub fn points_within(&self, points: &[Vec3], center: Vec3, radius: f64) -> Vec<usize> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let r2 = radius * radius;
        let reach = self.reach_for(radius);
        let (cx, cy, cz) = Self::key(center, self.cell_size);
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            if points[i].distance_squared(center) <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Visits every point pair within `radius` exactly once (unordered),
    /// scanning each occupied cell against its half-neighborhood.
    fn for_each_pair_within<F: FnMut(usize, usize)>(&self, points: &[Vec3], radius: f64, mut f: F) {
        let r2 = radius * radius;
        let offsets = self.offsets_for(self.reach_for(radius));
        for (&(x, y, z), bucket) in &self.cells {
            for &(dx, dy, dz) in offsets.iter() {
                let same = (dx, dy, dz) == (0, 0, 0);
                let other = if same {
                    bucket
                } else {
                    match self.cells.get(&(x + dx, y + dy, z + dz)) {
                        Some(b) => b,
                        None => continue,
                    }
                };
                for (ai, &i) in bucket.iter().enumerate() {
                    let start = if same { ai + 1 } else { 0 };
                    for &j in &other[start..] {
                        if points[i].distance_squared(points[j]) <= r2 {
                            f(i, j);
                        }
                    }
                }
            }
        }
    }

    /// Builds the full fixed-radius adjacency: `result[i]` holds the sorted
    /// indices of every point within `radius` of point `i` (excluding `i`).
    pub fn adjacency(&self, points: &[Vec3], radius: f64) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); points.len()];
        self.for_each_pair_within(points, radius, |i, j| {
            adj[i].push(j);
            adj[j].push(i);
        });
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }

    /// Per-point neighbor counts within `radius` — the counting pass of
    /// [`SpatialGrid::adjacency_csr`] alone, for callers (range
    /// calibration) that only need degrees.
    pub fn adjacency_degrees(&self, points: &[Vec3], radius: f64) -> Vec<u32> {
        let mut deg = vec![0u32; points.len()];
        self.for_each_pair_within(points, radius, |i, j| {
            deg[i] += 1;
            deg[j] += 1;
        });
        deg
    }

    /// Builds the fixed-radius adjacency directly in CSR form: returns
    /// `(offsets, neighbors)` where point `i`'s sorted neighbor indices
    /// are `neighbors[offsets[i] as usize..offsets[i + 1] as usize]`.
    ///
    /// Two passes (count, then scatter) instead of one pair-buffer pass:
    /// peak memory is the degree array plus the finished arena, which is
    /// what lets million-node builds stay near the final footprint.
    ///
    /// # Panics
    ///
    /// Panics if the point count or total directed-degree sum exceeds
    /// `u32::MAX` (a ~4-billion-entry arena; far past any supported scene).
    pub fn adjacency_csr(&self, points: &[Vec3], radius: f64) -> (Vec<u32>, Vec<u32>) {
        assert!(points.len() <= u32::MAX as usize, "point count exceeds u32 index space");
        let deg = self.adjacency_degrees(points, radius);
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        assert!(total <= u32::MAX as u64, "adjacency arena exceeds u32 index space");
        let mut offsets = Vec::with_capacity(points.len() + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        // Scatter: `cursor[i]` tracks the next free slot of point `i`.
        let mut cursor: Vec<u32> = offsets[..points.len()].to_vec();
        let mut arena = vec![0u32; total as usize];
        self.for_each_pair_within(points, radius, |i, j| {
            arena[cursor[i] as usize] = j as u32;
            cursor[i] += 1;
            arena[cursor[j] as usize] = i as u32;
            cursor[j] += 1;
        });
        for i in 0..points.len() {
            arena[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        (offsets, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_adjacency(points: &[Vec3], radius: f64) -> Vec<Vec<usize>> {
        let r2 = radius * radius;
        let mut adj = vec![Vec::new(); points.len()];
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].distance_squared(points[j]) <= r2 {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        adj
    }

    fn random_points(n: usize, seed: u64, span: f64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                )
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_adjacency() {
        for seed in 0..4 {
            let pts = random_points(300, seed, 3.0);
            let grid = SpatialGrid::build(&pts, 1.0);
            assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
        }
    }

    #[test]
    fn matches_bruteforce_with_small_cells() {
        let pts = random_points(200, 7, 2.0);
        let grid = SpatialGrid::build(&pts, 0.35);
        assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
    }

    /// Regression pin for the hoisted offset table: the cached reach-1
    /// offsets must reproduce exactly what per-call recomputation built.
    #[test]
    fn hoisted_offsets_pin_adjacency_output() {
        let recomputed = half_offsets(1);
        assert_eq!(recomputed.len(), 14);
        for seed in 0..3 {
            let pts = random_points(250, seed, 2.5);
            let grid = SpatialGrid::build(&pts, 1.0);
            assert_eq!(grid.half_offsets_r1, recomputed);
            assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
            // Radius below cell size reuses the same cached table.
            assert_eq!(grid.adjacency(&pts, 0.6), brute_adjacency(&pts, 0.6));
        }
    }

    #[test]
    fn csr_matches_vec_of_vec_adjacency() {
        for (seed, cell, radius) in [(0u64, 1.0, 1.0), (7, 0.35, 1.0), (11, 0.5, 1.7)] {
            let pts = random_points(220, seed, 2.0);
            let grid = SpatialGrid::build(&pts, cell);
            let reference = grid.adjacency(&pts, radius);
            let (offsets, arena) = grid.adjacency_csr(&pts, radius);
            let degrees = grid.adjacency_degrees(&pts, radius);
            assert_eq!(offsets.len(), pts.len() + 1);
            assert_eq!(offsets[0], 0);
            for (i, list) in reference.iter().enumerate() {
                let slice = &arena[offsets[i] as usize..offsets[i + 1] as usize];
                assert_eq!(degrees[i] as usize, list.len(), "degree of {i}");
                assert_eq!(slice.len(), list.len(), "slice of {i}");
                assert!(slice.iter().map(|&v| v as usize).eq(list.iter().copied()), "node {i}");
            }
        }
    }

    #[test]
    fn csr_of_empty_input() {
        let pts: Vec<Vec3> = Vec::new();
        let grid = SpatialGrid::build(&pts, 1.0);
        let (offsets, arena) = grid.adjacency_csr(&pts, 1.0);
        assert_eq!(offsets, vec![0]);
        assert!(arena.is_empty());
    }

    /// Extreme coordinates (far past the cell-key clamp) must neither
    /// panic on offset overflow nor report wrong neighbors: the clamp
    /// collapses the far points into boundary cells and the exact
    /// distance test keeps every query correct.
    #[test]
    fn extreme_coordinates_clamp_instead_of_overflowing() {
        let pts = vec![
            Vec3::new(1e300, 0.0, 0.0),
            Vec3::new(1e300, 0.3, 0.0),
            Vec3::new(-1e300, 0.0, 0.0),
            Vec3::new(-1e300, 0.0, 0.3),
            Vec3::ZERO,
            Vec3::new(0.2, 0.0, 0.0),
            Vec3::new(f64::MAX, f64::MAX, f64::MAX),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
        let (offsets, arena) = grid.adjacency_csr(&pts, 1.0);
        let as_vecs: Vec<Vec<usize>> = (0..pts.len())
            .map(|i| {
                arena[offsets[i] as usize..offsets[i + 1] as usize]
                    .iter()
                    .map(|&v| v as usize)
                    .collect()
            })
            .collect();
        assert_eq!(as_vecs, brute_adjacency(&pts, 1.0));
        let mut near = grid.points_within(&pts, Vec3::new(1e300, 0.1, 0.0), 1.0);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
        // Membership updates in the clamped cells stay consistent.
        let mut moved = grid.clone();
        moved.remove(1, pts[1]);
        let mut near = moved.points_within(&pts, Vec3::new(1e300, 0.1, 0.0), 1.0);
        near.sort_unstable();
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn neighbors_within_excludes_self() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.2, 0.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.neighbors_within(&pts, 0, 1.0), vec![1]);
        assert_eq!(grid.neighbors_within(&pts, 1, 1.0), vec![0]);
    }

    #[test]
    fn points_within_arbitrary_center() {
        let pts = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        let mut hits = grid.points_within(&pts, Vec3::new(0.5, 0.0, 0.0), 0.6);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert!(grid.points_within(&pts, Vec3::new(100.0, 0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let pts = vec![Vec3::ZERO, Vec3::ZERO, Vec3::ZERO];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.neighbors_within(&pts, 0, 0.5).len(), 2);
        let adj = grid.adjacency(&pts, 0.5);
        assert_eq!(adj[0], vec![1, 2]);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec3> = Vec::new();
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.occupied_cells(), 0);
        assert!(grid.adjacency(&pts, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_panics() {
        let _ = SpatialGrid::build(&[], 0.0);
    }

    #[test]
    fn insert_and_remove_track_membership() {
        let mut pts = random_points(120, 13, 2.0);
        let mut grid = SpatialGrid::build(&pts, 1.0);
        // Remove half the points, move a quarter, then re-add the removed
        // half at new positions; queries must match a fresh grid over the
        // same live set throughout.
        for i in 0..60 {
            grid.remove(i, pts[i]);
        }
        for i in 60..90 {
            let to = pts[i] + Vec3::new(0.4, -0.3, 0.2);
            grid.remove(i, pts[i]);
            pts[i] = to;
            grid.insert(i, to);
        }
        for i in 0..60 {
            let to = pts[i] * 0.5 + Vec3::new(0.1, 0.1, -0.2);
            pts[i] = to;
            grid.insert(i, to);
        }
        let fresh = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.occupied_cells(), fresh.occupied_cells());
        for q in 0..pts.len() {
            let mut a = grid.neighbors_within(&pts, q, 1.0);
            let mut b = fresh.neighbors_within(&pts, q, 1.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn removed_points_stop_matching_queries() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.2, 0.0, 0.0), Vec3::new(0.4, 0.0, 0.0)];
        let mut grid = SpatialGrid::build(&pts, 1.0);
        grid.remove(1, pts[1]);
        assert_eq!(grid.points_within(&pts, Vec3::ZERO, 0.5), vec![0, 2]);
        grid.insert(1, pts[1]);
        assert_eq!(grid.points_within(&pts, Vec3::ZERO, 0.5), vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "index in cell")]
    fn double_remove_panics() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0)];
        let mut grid = SpatialGrid::build(&pts, 1.0);
        grid.remove(0, pts[0]);
        grid.remove(0, pts[0]);
    }

    #[test]
    fn radius_larger_than_cell() {
        let pts = random_points(150, 11, 2.0);
        let grid = SpatialGrid::build(&pts, 0.5);
        assert_eq!(grid.adjacency(&pts, 1.7), brute_adjacency(&pts, 1.7));
    }
}
