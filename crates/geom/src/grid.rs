//! Uniform spatial hash grid for fixed-radius neighbor queries.
//!
//! Building radio adjacency for an `n`-node network naively costs `O(n²)`
//! distance checks; the paper's networks have thousands of nodes and the
//! experiment harness sweeps many of them, so the generator bins points into
//! cells of side `cell_size` and only inspects the 27 neighboring cells.

use std::collections::BTreeMap;

use crate::Vec3;

/// A uniform spatial hash over a set of points, supporting radius queries.
///
/// # Example
///
/// ```
/// use ballfit_geom::{grid::SpatialGrid, Vec3};
/// let pts = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0), Vec3::new(3.0, 0.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let mut near = grid.neighbors_within(&pts, 0, 1.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_size: f64,
    // BTreeMap rather than HashMap: `adjacency` iterates the cells, and
    // deterministic cell order keeps whole-pipeline runs bit-reproducible.
    cells: BTreeMap<(i64, i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with the given `cell_size`.
    ///
    /// For radius-`r` queries, `cell_size >= r` gives the classic
    /// 27-cell scan; smaller cells also work but scan more cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(points: &[Vec3], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive: {cell_size}"
        );
        let mut cells: BTreeMap<(i64, i64, i64), Vec<usize>> = BTreeMap::new();
        for (i, &p) in points.iter().enumerate() {
            cells.entry(Self::key(p, cell_size)).or_default().push(i);
        }
        SpatialGrid { cell_size, cells }
    }

    #[inline]
    fn key(p: Vec3, cell: f64) -> (i64, i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64, (p.z / cell).floor() as i64)
    }

    /// Cell side length this grid was built with.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Inserts point-index `i`, located at `p`, into the grid. The caller
    /// is responsible for keeping the backing `points` slice consistent
    /// (`points[i] == p` whenever a query runs) and for not inserting the
    /// same index twice.
    ///
    /// Together with [`SpatialGrid::remove`] this supports dynamic point
    /// sets (network churn): membership changes cost one bucket update
    /// instead of an `O(n)` rebuild.
    pub fn insert(&mut self, i: usize, p: Vec3) {
        self.cells.entry(Self::key(p, self.cell_size)).or_default().push(i);
    }

    /// Removes point-index `i` from the grid, where `p` is the position it
    /// was inserted under (the cell is derived from `p`, so it must be the
    /// same value — not a later position).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not present in the cell of `p`.
    pub fn remove(&mut self, i: usize, p: Vec3) {
        let key = Self::key(p, self.cell_size);
        let bucket = self.cells.get_mut(&key).expect("SpatialGrid::remove: cell is empty");
        let at = bucket.iter().position(|&x| x == i).expect("SpatialGrid::remove: index in cell");
        bucket.remove(at);
        if bucket.is_empty() {
            self.cells.remove(&key);
        }
    }

    /// Indices of all points within distance `radius` of `points[query]`,
    /// excluding `query` itself. `points` must be the same slice the grid
    /// was built from.
    pub fn neighbors_within(&self, points: &[Vec3], query: usize, radius: f64) -> Vec<usize> {
        let center = points[query];
        let mut out = self.points_within(points, center, radius);
        out.retain(|&i| i != query);
        out
    }

    /// Indices of all points within distance `radius` of an arbitrary
    /// location `center`.
    pub fn points_within(&self, points: &[Vec3], center: Vec3, radius: f64) -> Vec<usize> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let r2 = radius * radius;
        let reach = (radius / self.cell_size).ceil() as i64;
        let (cx, cy, cz) = Self::key(center, self.cell_size);
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            if points[i].distance_squared(center) <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Builds the full fixed-radius adjacency: `result[i]` holds the sorted
    /// indices of every point within `radius` of point `i` (excluding `i`).
    pub fn adjacency(&self, points: &[Vec3], radius: f64) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); points.len()];
        let r2 = radius * radius;
        // Scan each occupied cell against its half-neighborhood so every
        // pair is tested exactly once.
        let offsets: Vec<(i64, i64, i64)> = {
            let mut o = Vec::new();
            let reach = (radius / self.cell_size).ceil() as i64;
            for dx in -reach..=reach {
                for dy in -reach..=reach {
                    for dz in -reach..=reach {
                        if (dx, dy, dz) > (0, 0, 0) || (dx, dy, dz) == (0, 0, 0) {
                            o.push((dx, dy, dz));
                        }
                    }
                }
            }
            o
        };
        for (&(x, y, z), bucket) in &self.cells {
            for &(dx, dy, dz) in &offsets {
                let same = (dx, dy, dz) == (0, 0, 0);
                let other = if same {
                    bucket
                } else {
                    match self.cells.get(&(x + dx, y + dy, z + dz)) {
                        Some(b) => b,
                        None => continue,
                    }
                };
                for (ai, &i) in bucket.iter().enumerate() {
                    let start = if same { ai + 1 } else { 0 };
                    for &j in &other[start..] {
                        if points[i].distance_squared(points[j]) <= r2 {
                            adj[i].push(j);
                            adj[j].push(i);
                        }
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_adjacency(points: &[Vec3], radius: f64) -> Vec<Vec<usize>> {
        let r2 = radius * radius;
        let mut adj = vec![Vec::new(); points.len()];
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].distance_squared(points[j]) <= r2 {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        adj
    }

    fn random_points(n: usize, seed: u64, span: f64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                )
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_adjacency() {
        for seed in 0..4 {
            let pts = random_points(300, seed, 3.0);
            let grid = SpatialGrid::build(&pts, 1.0);
            assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
        }
    }

    #[test]
    fn matches_bruteforce_with_small_cells() {
        let pts = random_points(200, 7, 2.0);
        let grid = SpatialGrid::build(&pts, 0.35);
        assert_eq!(grid.adjacency(&pts, 1.0), brute_adjacency(&pts, 1.0));
    }

    #[test]
    fn neighbors_within_excludes_self() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.2, 0.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.neighbors_within(&pts, 0, 1.0), vec![1]);
        assert_eq!(grid.neighbors_within(&pts, 1, 1.0), vec![0]);
    }

    #[test]
    fn points_within_arbitrary_center() {
        let pts = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        let mut hits = grid.points_within(&pts, Vec3::new(0.5, 0.0, 0.0), 0.6);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert!(grid.points_within(&pts, Vec3::new(100.0, 0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let pts = vec![Vec3::ZERO, Vec3::ZERO, Vec3::ZERO];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.neighbors_within(&pts, 0, 0.5).len(), 2);
        let adj = grid.adjacency(&pts, 0.5);
        assert_eq!(adj[0], vec![1, 2]);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec3> = Vec::new();
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.occupied_cells(), 0);
        assert!(grid.adjacency(&pts, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_panics() {
        let _ = SpatialGrid::build(&[], 0.0);
    }

    #[test]
    fn insert_and_remove_track_membership() {
        let mut pts = random_points(120, 13, 2.0);
        let mut grid = SpatialGrid::build(&pts, 1.0);
        // Remove half the points, move a quarter, then re-add the removed
        // half at new positions; queries must match a fresh grid over the
        // same live set throughout.
        for i in 0..60 {
            grid.remove(i, pts[i]);
        }
        for i in 60..90 {
            let to = pts[i] + Vec3::new(0.4, -0.3, 0.2);
            grid.remove(i, pts[i]);
            pts[i] = to;
            grid.insert(i, to);
        }
        for i in 0..60 {
            let to = pts[i] * 0.5 + Vec3::new(0.1, 0.1, -0.2);
            pts[i] = to;
            grid.insert(i, to);
        }
        let fresh = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.occupied_cells(), fresh.occupied_cells());
        for q in 0..pts.len() {
            let mut a = grid.neighbors_within(&pts, q, 1.0);
            let mut b = fresh.neighbors_within(&pts, q, 1.0);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn removed_points_stop_matching_queries() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.2, 0.0, 0.0), Vec3::new(0.4, 0.0, 0.0)];
        let mut grid = SpatialGrid::build(&pts, 1.0);
        grid.remove(1, pts[1]);
        assert_eq!(grid.points_within(&pts, Vec3::ZERO, 0.5), vec![0, 2]);
        grid.insert(1, pts[1]);
        assert_eq!(grid.points_within(&pts, Vec3::ZERO, 0.5), vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "index in cell")]
    fn double_remove_panics() {
        let pts = vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0)];
        let mut grid = SpatialGrid::build(&pts, 1.0);
        grid.remove(0, pts[0]);
        grid.remove(0, pts[0]);
    }

    #[test]
    fn radius_larger_than_cell() {
        let pts = random_points(150, 11, 2.0);
        let grid = SpatialGrid::build(&pts, 0.5);
        assert_eq!(grid.adjacency(&pts, 1.7), brute_adjacency(&pts, 1.7));
    }
}
