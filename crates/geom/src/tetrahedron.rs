//! Tetrahedra: volumes and circumspheres.

use crate::{predicates, Sphere, Vec3, EPS};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A tetrahedron defined by four vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Tetrahedron {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
    /// Fourth vertex.
    pub d: Vec3,
}

impl Tetrahedron {
    /// Creates a tetrahedron from its vertices.
    #[inline]
    pub const fn new(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Self {
        Tetrahedron { a, b, c, d }
    }

    /// Signed volume (positive when `(a, b, c)` is right-handed seen from `d`...
    /// more precisely `orient3d(a,b,c,d) / 6`).
    #[inline]
    pub fn signed_volume(&self) -> f64 {
        predicates::orient3d(self.a, self.b, self.c, self.d) / 6.0
    }

    /// Absolute volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.signed_volume().abs()
    }

    /// Returns `true` if the four vertices are coplanar within `tol`.
    #[inline]
    pub fn is_degenerate(&self, tol: f64) -> bool {
        predicates::coplanar(self.a, self.b, self.c, self.d, tol)
    }

    /// Circumsphere — the unique sphere through all four vertices, or `None`
    /// for a degenerate tetrahedron.
    pub fn circumsphere(&self) -> Option<Sphere> {
        // Solve the 3x3 linear system arising from equating squared
        // distances to the unknown center.
        let ba = self.b - self.a;
        let ca = self.c - self.a;
        let da = self.d - self.a;
        let det = predicates::orient3d(self.a, self.b, self.c, self.d);
        if det.abs() <= EPS {
            return None;
        }
        let sq_ba = ba.norm_squared();
        let sq_ca = ca.norm_squared();
        let sq_da = da.norm_squared();
        let offset =
            (ca.cross(da) * sq_ba + da.cross(ba) * sq_ca + ba.cross(ca) * sq_da) / (2.0 * det);
        let center = self.a + offset;
        Some(Sphere::new(center, center.distance(self.a)))
    }

    /// Centroid of the tetrahedron.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c + self.d) / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> Tetrahedron {
        Tetrahedron::new(Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z)
    }

    #[test]
    fn volumes() {
        let t = unit_tet();
        assert!((t.volume() - 1.0 / 6.0).abs() < 1e-15);
        assert!(t.signed_volume() > 0.0);
        let flipped = Tetrahedron::new(t.a, t.c, t.b, t.d);
        assert!(flipped.signed_volume() < 0.0);
        assert_eq!(flipped.volume(), t.volume());
    }

    #[test]
    fn degenerate_detection() {
        let flat = Tetrahedron::new(Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::new(0.5, 0.5, 0.0));
        assert!(flat.is_degenerate(EPS));
        assert!(flat.circumsphere().is_none());
        assert!(!unit_tet().is_degenerate(EPS));
    }

    #[test]
    fn circumsphere_touches_all_vertices() {
        let t = Tetrahedron::new(
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(1.0, -0.2, 0.4),
            Vec3::new(-0.3, 0.9, -0.1),
            Vec3::new(0.2, 0.3, 1.2),
        );
        let s = t.circumsphere().unwrap();
        for p in [t.a, t.b, t.c, t.d] {
            assert!(s.touches(p, 1e-9));
        }
    }

    #[test]
    fn regular_tetrahedron_circumsphere() {
        // Regular tetrahedron inscribed in the unit sphere (cube-corner form).
        let inv = 1.0 / 3f64.sqrt();
        let t = Tetrahedron::new(
            Vec3::new(inv, inv, inv),
            Vec3::new(inv, -inv, -inv),
            Vec3::new(-inv, inv, -inv),
            Vec3::new(-inv, -inv, inv),
        );
        let s = t.circumsphere().unwrap();
        assert!(s.center.norm() < 1e-12);
        assert!((s.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid() {
        assert_eq!(unit_tet().centroid(), Vec3::new(0.25, 0.25, 0.25));
    }
}
