//! Triangles in 3D: areas, normals, circumcircles.

use crate::{predicates, Vec3, EPS};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A triangle defined by three vertices in 3D.
///
/// # Example
///
/// ```
/// use ballfit_geom::{Triangle, Vec3};
/// let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
/// assert_eq!(t.area(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

impl Triangle {
    /// Creates a triangle from its vertices (degenerate triangles allowed;
    /// query [`Triangle::is_degenerate`]).
    #[inline]
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// Twice the area vector: `(b − a) × (c − a)`.
    #[inline]
    pub fn area_vector(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Triangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        0.5 * self.area_vector().norm()
    }

    /// Unit normal, or `None` for (near-)degenerate triangles.
    #[inline]
    pub fn normal(&self) -> Option<Vec3> {
        self.area_vector().try_normalized(EPS)
    }

    /// Returns `true` if the vertices are collinear within `tol`
    /// (an area threshold on twice the area).
    #[inline]
    pub fn is_degenerate(&self, tol: f64) -> bool {
        predicates::collinear(self.a, self.b, self.c, tol)
    }

    /// Centroid of the triangle.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Perimeter of the triangle.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        self.a.distance(self.b) + self.b.distance(self.c) + self.c.distance(self.a)
    }

    /// Circumcenter of the triangle — the point in the triangle's plane
    /// equidistant from all three vertices.
    ///
    /// Returns `None` for degenerate (collinear) triangles.
    pub fn circumcenter(&self) -> Option<Vec3> {
        // Standard barycentric formulation:
        //   O = a + ( |c-a|² (ab × ac) × ab + |b-a|² (ac × (ab × ac)) ) / (2 |ab × ac|²)
        let ab = self.b - self.a;
        let ac = self.c - self.a;
        let n = ab.cross(ac);
        let n2 = n.norm_squared();
        if n2 <= EPS * EPS {
            return None;
        }
        let offset =
            (n.cross(ab) * ac.norm_squared() + ac.cross(n) * ab.norm_squared()) / (2.0 * n2);
        Some(self.a + offset)
    }

    /// Circumradius, or `None` for degenerate triangles.
    pub fn circumradius(&self) -> Option<f64> {
        self.circumcenter().map(|o| o.distance(self.a))
    }

    /// Longest edge length.
    pub fn longest_edge(&self) -> f64 {
        self.a.distance(self.b).max(self.b.distance(self.c)).max(self.c.distance(self.a))
    }

    /// Closest point on the (solid) triangle to `p`.
    ///
    /// Handles all Voronoi regions (face, edges, vertices); degenerate
    /// triangles reduce gracefully to their edges/vertices.
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        // Ericson, "Real-Time Collision Detection", §5.1.5.
        let (a, b, c) = (self.a, self.b, self.c);
        let ab = b - a;
        let ac = c - a;
        let ap = p - a;
        let d1 = ab.dot(ap);
        let d2 = ac.dot(ap);
        if d1 <= 0.0 && d2 <= 0.0 {
            return a;
        }
        let bp = p - b;
        let d3 = ab.dot(bp);
        let d4 = ac.dot(bp);
        if d3 >= 0.0 && d4 <= d3 {
            return b;
        }
        let vc = d1 * d4 - d3 * d2;
        if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
            let t = d1 / (d1 - d3);
            return a + ab * t;
        }
        let cp = p - c;
        let d5 = ab.dot(cp);
        let d6 = ac.dot(cp);
        if d6 >= 0.0 && d5 <= d6 {
            return c;
        }
        let vb = d5 * d2 - d1 * d6;
        if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
            let t = d2 / (d2 - d6);
            return a + ac * t;
        }
        let va = d3 * d6 - d5 * d4;
        if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
            let t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
            return b + (c - b) * t;
        }
        let denom = 1.0 / (va + vb + vc);
        let v = vb * denom;
        let w = vc * denom;
        a + ab * v + ac * w
    }

    /// Distance from `p` to the (solid) triangle.
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Barycentric coordinates `(u, v, w)` of the in-plane projection of
    /// `p` (u at `a`, v at `b`, w at `c`; they sum to 1 but may be
    /// negative outside the triangle). Returns `None` for degenerate
    /// triangles.
    pub fn barycentric(&self, p: Vec3) -> Option<(f64, f64, f64)> {
        let v0 = self.b - self.a;
        let v1 = self.c - self.a;
        let v2 = p - self.a;
        let d00 = v0.dot(v0);
        let d01 = v0.dot(v1);
        let d11 = v1.dot(v1);
        let d20 = v2.dot(v0);
        let d21 = v2.dot(v1);
        let denom = d00 * d11 - d01 * d01;
        if denom.abs() <= EPS * EPS {
            return None;
        }
        let v = (d11 * d20 - d01 * d21) / denom;
        let w = (d00 * d21 - d01 * d20) / denom;
        Some((1.0 - v - w, v, w))
    }

    /// Returns `true` if `p` is within `dist_tol` of the triangle plane
    /// patch *and* its projection falls strictly inside the triangle
    /// (all barycentric coordinates above `bary_tol`).
    ///
    /// Used by the surface builder to reject landmark triangles that span
    /// a region subdivided by another landmark.
    pub fn projects_strictly_inside(&self, p: Vec3, dist_tol: f64, bary_tol: f64) -> bool {
        if self.distance_to_point(p) > dist_tol {
            return false;
        }
        match self.barycentric(p) {
            Some((u, v, w)) => u > bary_tol && v > bary_tol && w > bary_tol,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_normal() {
        let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
        assert_eq!(t.area(), 0.5);
        assert_eq!(t.normal().unwrap(), Vec3::Z);
        assert_eq!(t.centroid(), Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0));
    }

    #[test]
    fn degenerate_has_no_normal_or_circumcenter() {
        let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::new(2.0, 0.0, 0.0));
        assert!(t.is_degenerate(EPS));
        assert!(t.normal().is_none());
        assert!(t.circumcenter().is_none());
        assert!(t.circumradius().is_none());
    }

    #[test]
    fn circumcenter_is_equidistant() {
        let t = Triangle::new(
            Vec3::new(0.2, -0.4, 0.9),
            Vec3::new(1.1, 0.5, -0.3),
            Vec3::new(-0.7, 0.8, 0.1),
        );
        let o = t.circumcenter().unwrap();
        let r = o.distance(t.a);
        assert!((o.distance(t.b) - r).abs() < 1e-12);
        assert!((o.distance(t.c) - r).abs() < 1e-12);
        // Circumcenter lies in the triangle's plane.
        let n = t.normal().unwrap();
        assert!((o - t.a).dot(n).abs() < 1e-12);
        assert!((t.circumradius().unwrap() - r).abs() < 1e-15);
    }

    #[test]
    fn right_triangle_circumcenter_is_hypotenuse_midpoint() {
        let t = Triangle::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        let o = t.circumcenter().unwrap();
        assert!((o - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn closest_point_regions() {
        let t = Triangle::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        // Above the face interior: projects straight down.
        let p = Vec3::new(0.5, 0.5, 3.0);
        assert!((t.closest_point(p) - Vec3::new(0.5, 0.5, 0.0)).norm() < 1e-12);
        assert!((t.distance_to_point(p) - 3.0).abs() < 1e-12);
        // Beyond vertex a.
        assert_eq!(t.closest_point(Vec3::new(-1.0, -1.0, 0.0)), Vec3::ZERO);
        // Beside edge ab.
        let q = t.closest_point(Vec3::new(1.0, -2.0, 0.0));
        assert!((q - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        // Beside the hypotenuse.
        let h = t.closest_point(Vec3::new(2.0, 2.0, 0.0));
        assert!((h - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
        // On the triangle itself: distance 0.
        assert!(t.distance_to_point(Vec3::new(0.3, 0.3, 0.0)) < 1e-12);
    }

    #[test]
    fn barycentric_and_interior_projection() {
        let t = Triangle::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        let (u, v, w) = t.barycentric(t.centroid()).unwrap();
        assert!((u - 1.0 / 3.0).abs() < 1e-12);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
        assert!((w - 1.0 / 3.0).abs() < 1e-12);
        // Inside, slightly above the plane: projects inside.
        assert!(t.projects_strictly_inside(Vec3::new(0.5, 0.5, 0.1), 0.2, 0.05));
        // Too far above the plane.
        assert!(!t.projects_strictly_inside(Vec3::new(0.5, 0.5, 1.0), 0.2, 0.05));
        // A vertex of an adjacent triangle: projection lands on the edge,
        // not strictly inside.
        assert!(!t.projects_strictly_inside(Vec3::new(1.0, 0.0, 0.0), 0.2, 0.05));
        assert!(!t.projects_strictly_inside(Vec3::new(3.0, 3.0, 0.0), 0.2, 0.05));
        // Degenerate triangle: no barycentric coordinates.
        let d = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::new(2.0, 0.0, 0.0));
        assert!(d.barycentric(Vec3::Y).is_none());
        assert!(!d.projects_strictly_inside(Vec3::Y, 10.0, 0.0));
    }

    #[test]
    fn perimeter_and_longest_edge() {
        let t = Triangle::new(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0), Vec3::new(0.0, 4.0, 0.0));
        assert!((t.perimeter() - 12.0).abs() < 1e-12);
        assert_eq!(t.longest_edge(), 5.0);
    }
}
