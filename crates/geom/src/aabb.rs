//! Axis-aligned bounding boxes.

use crate::Vec3;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// # Example
///
/// ```
/// use ballfit_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
/// assert!(b.contains(Vec3::splat(1.0)));
/// assert_eq!(b.volume(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the corresponding component
    /// of `max`.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max: min={min}, max={max}"
        );
        Aabb { min, max }
    }

    /// Creates the smallest box containing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Vec3]) -> Option<Self> {
        let first = *points.first()?;
        let (min, max) = points.iter().fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    /// A cube centered at `center` with half-extent `half`.
    pub fn cube(center: Vec3, half: f64) -> Self {
        assert!(half >= 0.0, "half-extent must be non-negative");
        Aabb::new(center - Vec3::splat(half), center + Vec3::splat(half))
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Extent along each axis (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Returns `true` if `p` lies inside or on the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap (sharing a face counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The smallest box containing both boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Grows the box by `margin` in every direction.
    pub fn inflated(&self, margin: f64) -> Aabb {
        let m = Vec3::splat(margin);
        let min = self.min - m;
        let max = self.max + m;
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inflation by {margin} inverted the box"
        );
        Aabb { min, max }
    }

    /// Clamps a point to the box.
    #[inline]
    pub fn clamp(&self, p: Vec3) -> Vec3 {
        p.max(self.min).min(self.max)
    }

    /// Squared distance from `p` to the box (zero if inside).
    #[inline]
    pub fn distance_squared(&self, p: Vec3) -> f64 {
        self.clamp(p).distance_squared(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn construction_and_accessors() {
        let b = unit();
        assert_eq!(b.center(), Vec3::splat(0.5));
        assert_eq!(b.extent(), Vec3::splat(1.0));
        assert_eq!(b.volume(), 1.0);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_panics() {
        let _ = Aabb::new(Vec3::splat(1.0), Vec3::ZERO);
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [Vec3::new(1.0, -2.0, 0.5), Vec3::new(-1.0, 3.0, 2.0), Vec3::ZERO];
        let b = Aabb::from_points(&pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 2.0));
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_and_outside() {
        let b = unit();
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::new(1.0 + 1e-12, 0.5, 0.5)));
        assert!(!b.contains(Vec3::new(0.5, -0.1, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let a = unit();
        let apart = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let touch = Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0));
        let overlap = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        assert!(!a.intersects(&apart));
        assert!(a.intersects(&touch));
        assert!(a.intersects(&overlap));
        assert!(overlap.intersects(&a));
    }

    #[test]
    fn union_and_inflate() {
        let a = unit();
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::ZERO);
        let u = a.union(&b);
        assert_eq!(u.min, Vec3::splat(-1.0));
        assert_eq!(u.max, Vec3::splat(1.0));
        let infl = a.inflated(0.5);
        assert_eq!(infl.min, Vec3::splat(-0.5));
        assert_eq!(infl.max, Vec3::splat(1.5));
    }

    #[test]
    fn cube_and_distance() {
        let c = Aabb::cube(Vec3::ZERO, 1.0);
        assert_eq!(c.min, Vec3::splat(-1.0));
        assert_eq!(c.distance_squared(Vec3::ZERO), 0.0);
        assert_eq!(c.distance_squared(Vec3::new(2.0, 0.0, 0.0)), 1.0);
        assert_eq!(c.clamp(Vec3::new(5.0, 0.0, -9.0)), Vec3::new(1.0, 0.0, -1.0));
    }
}
