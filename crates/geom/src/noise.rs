//! Seeded, smooth 3D value noise.
//!
//! Used by the scenario generator to displace the ocean floor of the
//! underwater network (the paper's "bumpy bottom", Fig. 6) without any
//! external noise library. The noise is deterministic in the seed, smooth
//! (C¹ via smoothstep interpolation) and bounded in `[-1, 1]`.

/// Deterministic 3D value-noise field.
///
/// # Example
///
/// ```
/// use ballfit_geom::noise::ValueNoise3;
/// let n = ValueNoise3::new(42);
/// let v = n.sample(0.3, 1.7, -2.2);
/// assert!((-1.0..=1.0).contains(&v));
/// // Deterministic:
/// assert_eq!(v, ValueNoise3::new(42).sample(0.3, 1.7, -2.2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise3 {
    seed: u64,
}

impl ValueNoise3 {
    /// Creates a noise field for the given seed.
    pub const fn new(seed: u64) -> Self {
        ValueNoise3 { seed }
    }

    /// The seed this field was constructed with.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash a lattice point to a pseudo-random value in `[-1, 1]`.
    fn lattice(&self, x: i64, y: i64, z: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut h = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add((z as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        // Map to [-1, 1].
        (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Samples the noise field at `(x, y, z)`. The result is in `[-1, 1]`.
    pub fn sample(&self, x: f64, y: f64, z: f64) -> f64 {
        let (x0, y0, z0) = (x.floor(), y.floor(), z.floor());
        let (ix, iy, iz) = (x0 as i64, y0 as i64, z0 as i64);
        let (fx, fy, fz) = (x - x0, y - y0, z - z0);
        let (sx, sy, sz) = (smoothstep(fx), smoothstep(fy), smoothstep(fz));

        let mut corners = [0.0f64; 8];
        for (idx, corner) in corners.iter_mut().enumerate() {
            let dx = (idx & 1) as i64;
            let dy = ((idx >> 1) & 1) as i64;
            let dz = ((idx >> 2) & 1) as i64;
            *corner = self.lattice(ix + dx, iy + dy, iz + dz);
        }
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let x00 = lerp(corners[0], corners[1], sx);
        let x10 = lerp(corners[2], corners[3], sx);
        let x01 = lerp(corners[4], corners[5], sx);
        let x11 = lerp(corners[6], corners[7], sx);
        let y0v = lerp(x00, x10, sy);
        let y1v = lerp(x01, x11, sy);
        lerp(y0v, y1v, sz)
    }

    /// Fractal Brownian motion: `octaves` layers of noise, each at double the
    /// frequency and `gain` times the amplitude of the previous. Result is
    /// normalized back to roughly `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `octaves == 0`.
    pub fn fbm(&self, x: f64, y: f64, z: f64, octaves: u32, gain: f64) -> f64 {
        assert!(octaves > 0, "fbm requires at least one octave");
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut frequency = 1.0;
        let mut norm = 0.0;
        for octave in 0..octaves {
            // Offset each octave so layers decorrelate.
            let off = octave as f64 * 19.19;
            total += amplitude
                * self.sample(x * frequency + off, y * frequency + off, z * frequency + off);
            norm += amplitude;
            amplitude *= gain;
            frequency *= 2.0;
        }
        total / norm
    }
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ValueNoise3::new(1);
        let b = ValueNoise3::new(1);
        let c = ValueNoise3::new(2);
        assert_eq!(a.sample(1.5, 2.5, 3.5), b.sample(1.5, 2.5, 3.5));
        assert_ne!(a.sample(1.5, 2.5, 3.5), c.sample(1.5, 2.5, 3.5));
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn bounded() {
        let n = ValueNoise3::new(99);
        for i in 0..500 {
            let t = i as f64 * 0.173;
            let v = n.sample(t, t * 0.7 - 3.0, -t * 1.3);
            assert!((-1.0..=1.0).contains(&v), "sample out of range: {v}");
            let f = n.fbm(t, -t, t * 0.5, 4, 0.5);
            assert!((-1.0..=1.0).contains(&f), "fbm out of range: {f}");
        }
    }

    #[test]
    fn continuity_across_lattice_boundaries() {
        let n = ValueNoise3::new(7);
        // Values just left/right of an integer lattice plane must be close.
        let eps = 1e-6;
        for k in -3..4 {
            let x = k as f64;
            let a = n.sample(x - eps, 0.4, 0.7);
            let b = n.sample(x + eps, 0.4, 0.7);
            assert!((a - b).abs() < 1e-4, "discontinuity at x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn not_constant() {
        let n = ValueNoise3::new(3);
        let samples: Vec<f64> = (0..50).map(|i| n.sample(i as f64 * 0.37, 0.0, 0.0)).collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.2, "noise looks constant: range {}", max - min);
    }

    #[test]
    #[should_panic(expected = "at least one octave")]
    fn fbm_zero_octaves_panics() {
        ValueNoise3::new(0).fbm(0.0, 0.0, 0.0, 0, 0.5);
    }
}
