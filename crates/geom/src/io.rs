//! Mesh and point-cloud export (Wavefront OBJ and ASCII PLY).
//!
//! The paper's figures are renderings of detected boundary nodes and
//! constructed meshes; these writers let every experiment binary dump its
//! geometry for external visualization.

use std::io::{self, Write};

use crate::mesh::TriMesh;
use crate::Vec3;

/// Writes a [`TriMesh`] as Wavefront OBJ.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// # use ballfit_geom::{io::write_obj, mesh::TriMesh, Vec3};
/// # fn main() -> std::io::Result<()> {
/// let mesh = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]).unwrap();
/// let mut buf = Vec::new();
/// write_obj(&mut buf, &mesh)?;
/// assert!(String::from_utf8_lossy(&buf).contains("f 1 2 3"));
/// # Ok(())
/// # }
/// ```
pub fn write_obj<W: Write>(mut w: W, mesh: &TriMesh) -> io::Result<()> {
    writeln!(
        w,
        "# ballfit boundary mesh: {} vertices, {} faces",
        mesh.vertex_count(),
        mesh.face_count()
    )?;
    for v in mesh.vertices() {
        writeln!(w, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for f in mesh.faces() {
        // OBJ indices are 1-based.
        writeln!(w, "f {} {} {}", f[0] + 1, f[1] + 1, f[2] + 1)?;
    }
    Ok(())
}

/// Writes a point cloud as OBJ vertices (optionally with per-point labels as
/// comments). `labels`, when given, must be the same length as `points`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `labels` is `Some` and its length differs from `points`.
pub fn write_obj_points<W: Write>(
    mut w: W,
    points: &[Vec3],
    labels: Option<&[&str]>,
) -> io::Result<()> {
    if let Some(labels) = labels {
        assert_eq!(labels.len(), points.len(), "label/point length mismatch");
    }
    writeln!(w, "# ballfit point cloud: {} points", points.len())?;
    for (i, p) in points.iter().enumerate() {
        match labels {
            Some(labels) => writeln!(w, "v {} {} {} # {}", p.x, p.y, p.z, labels[i])?,
            None => writeln!(w, "v {} {} {}", p.x, p.y, p.z)?,
        }
    }
    Ok(())
}

/// Writes a [`TriMesh`] as ASCII PLY.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ply<W: Write>(mut w: W, mesh: &TriMesh) -> io::Result<()> {
    writeln!(w, "ply")?;
    writeln!(w, "format ascii 1.0")?;
    writeln!(w, "comment ballfit boundary mesh")?;
    writeln!(w, "element vertex {}", mesh.vertex_count())?;
    writeln!(w, "property double x")?;
    writeln!(w, "property double y")?;
    writeln!(w, "property double z")?;
    writeln!(w, "element face {}", mesh.face_count())?;
    writeln!(w, "property list uchar int vertex_indices")?;
    writeln!(w, "end_header")?;
    for v in mesh.vertices() {
        writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
    }
    for f in mesh.faces() {
        writeln!(w, "3 {} {} {}", f[0], f[1], f[2])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> TriMesh {
        TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]).unwrap()
    }

    #[test]
    fn obj_round_shape() {
        let mut buf = Vec::new();
        write_obj(&mut buf, &tri()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().filter(|l| l.starts_with("v ")).count(), 3);
        assert_eq!(s.lines().filter(|l| l.starts_with("f ")).count(), 1);
        assert!(s.contains("f 1 2 3"));
    }

    #[test]
    fn obj_points_with_labels() {
        let mut buf = Vec::new();
        write_obj_points(&mut buf, &[Vec3::ZERO, Vec3::X], Some(&["interior", "boundary"]))
            .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("# boundary"));
        assert!(s.contains("# interior"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn obj_points_label_mismatch_panics() {
        let mut buf = Vec::new();
        let _ = write_obj_points(&mut buf, &[Vec3::ZERO], Some(&[]));
    }

    #[test]
    fn ply_header_counts() {
        let mut buf = Vec::new();
        write_ply(&mut buf, &tri()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("ply\n"));
        assert!(s.contains("element vertex 3"));
        assert!(s.contains("element face 1"));
        assert!(s.trim_end().ends_with("3 0 1 2"));
    }
}
