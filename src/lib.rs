//! Shared helpers for the `ballfit` examples and integration tests.
//!
//! The real library lives in the workspace crates (`ballfit`,
//! `ballfit-geom`, `ballfit-netgen`, `ballfit-wsn`, `ballfit-mds`); this
//! root crate only hosts the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`, plus the small console
//! formatting helpers they share.

/// Renders rows as an aligned console table. The first row is treated as
/// the header and separated by a rule.
///
/// # Example
///
/// ```
/// let table = ballfit_repro::format_table(&[
///     vec!["error".into(), "found".into()],
///     vec!["0%".into(), "812".into()],
/// ]);
/// assert!(table.contains("error"));
/// assert!(table.lines().count() >= 3);
/// ```
pub fn format_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let render = |row: &[String]| -> String {
        row.iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render(&rows[0]));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in &rows[1..] {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["12345".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with("x"));
    }

    #[test]
    fn empty_table() {
        assert_eq!(format_table(&[]), "");
    }

    #[test]
    fn percentage() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
